package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"repro/internal/cube"
	"repro/internal/data"
)

// mapping is one memory-mapped .rst file, shared by every snapshot decoded
// from it (a partitioned file yields one snapshot per shard over the same
// mapping). refs counts those owners; the last Close releases the pages.
type mapping struct {
	data []byte
	refs atomic.Int32
}

func (m *mapping) close() error {
	if m.refs.Add(-1) > 0 {
		return nil
	}
	b := m.data
	m.data = nil
	return unmapFile(b)
}

// openMapping maps the open file f read-only and returns the mapping. The
// descriptor may be closed afterwards; the mapping persists until closed.
func openMapping(f *os.File) (*mapping, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("store: snapshot truncated (0 bytes)")
	}
	if size > math.MaxInt {
		return nil, fmt.Errorf("store: file too large to map (%d bytes)", size)
	}
	b, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("store: mmap: %w", err)
	}
	m := &mapping{data: b}
	m.refs.Store(1)
	return m, nil
}

// dimReader lazily decodes a mapped dimension column: Len/Code/Value read
// little-endian uint32 codes straight out of the mapping. It implements
// data.DimCursor, so a cursor-backed dataset serves rows without ever
// materializing the column.
type dimReader struct {
	dict []string
	raw  []byte // rows × 4 bytes of codes inside the mapping
}

func (r *dimReader) Len() int             { return len(r.raw) / 4 }
func (r *dimReader) Value(row int) string { return r.dict[r.Code(row)] }
func (r *dimReader) Dict() []string       { return r.dict }
func (r *dimReader) Code(row int) uint32  { return binary.LittleEndian.Uint32(r.raw[4*row:]) }

// measureReader lazily decodes a mapped measure column. It implements
// data.MeasureCursor.
type measureReader struct {
	raw []byte // rows × 8 bytes of float64 bits inside the mapping
}

func (r *measureReader) Len() int { return len(r.raw) / 8 }
func (r *measureReader) At(row int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(r.raw[8*row:]))
}

// eagerDimReader adapts an in-memory Column to the same reader seam.
type eagerDimReader struct{ c *Column }

func (r eagerDimReader) Len() int             { return len(r.c.Codes) }
func (r eagerDimReader) Value(row int) string { return r.c.Dict[r.c.Codes[row]] }
func (r eagerDimReader) Dict() []string       { return r.c.Dict }
func (r eagerDimReader) Code(row int) uint32  { return r.c.Codes[row] }

// eagerMeasureReader adapts an in-memory MeasureColumn to the reader seam.
type eagerMeasureReader struct{ m *MeasureColumn }

func (r eagerMeasureReader) Len() int           { return len(r.m.Values) }
func (r eagerMeasureReader) At(row int) float64 { return r.m.Values[row] }

// DimReader returns a lazily-decoded reader over dimension i — the uniform
// column surface across open modes. For a mapped snapshot it decodes
// elements on demand from the mapping; for an eager one it wraps the heap
// slices. The reader is safe for concurrent use and implements
// data.DimCursor.
func (s *Snapshot) DimReader(i int) data.DimCursor {
	c := &s.Dims[i]
	if c.Codes == nil && s.m != nil {
		return &dimReader{dict: c.Dict, raw: s.m.data[s.dimOff[i] : s.dimOff[i]+4*s.rows]}
	}
	return eagerDimReader{c: c}
}

// MeasureReader returns a lazily-decoded reader over measure i. See
// DimReader; it implements data.MeasureCursor.
func (s *Snapshot) MeasureReader(i int) data.MeasureCursor {
	m := &s.Measures[i]
	if m.Values == nil && s.m != nil {
		return &measureReader{raw: s.m.data[s.msOff[i] : s.msOff[i]+8*s.rows]}
	}
	return eagerMeasureReader{m: m}
}

// Mapped reports whether the snapshot's columns live in a memory-mapped file
// rather than heap slices.
func (s *Snapshot) Mapped() bool { return s.m != nil }

// Close releases the snapshot's file mapping, if any; eager snapshots are
// no-ops. Shards decoded from one partitioned file share a mapping, which is
// released when the last of them closes. The snapshot (and every dataset
// derived from it) must not be used afterwards.
func (s *Snapshot) Close() error {
	if s.m == nil {
		return nil
	}
	m := s.m
	s.m = nil
	return m.close()
}

// ResidentColumnBytes reports the heap bytes held by materialized column
// payloads (4 per code, 8 per measure value) — the dominant per-dataset
// resident cost. Mapped columns contribute nothing: their payloads stay in
// the page cache. Dictionaries are heap-resident in both modes and are not
// counted.
func (s *Snapshot) ResidentColumnBytes() int64 {
	var n int64
	for i := range s.Dims {
		n += int64(len(s.Dims[i].Codes)) * 4
	}
	for i := range s.Measures {
		n += int64(len(s.Measures[i].Values)) * 8
	}
	return n
}

// OpenMappedFile memory-maps a .rst snapshot instead of decoding it onto the
// heap: the header (schema, dictionaries, offset directory) is parsed and
// CRC-checked, every validation pass streams over the mapped payloads, and
// the returned snapshot exposes its columns as lazily-decoded readers
// (DimReader/MeasureReader) with nil Codes/Values slices. Heap cost is
// O(dictionaries + cube), not O(rows), so datasets larger than RAM serve
// with flat residency. Release the mapping with Close.
//
// Version-1 files carry inline payloads that cannot be mapped; they fall
// back to the eager path (the result answers Mapped() == false).
func OpenMappedFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := OpenMapped(f)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return s, nil
}

// OpenMapped maps the already-open file f (the descriptor may be closed
// afterwards; the mapping persists) and opens it like OpenMappedFile.
// Errors carry no file path; OpenMappedFile adds it.
func OpenMapped(f *os.File) (*Snapshot, error) {
	m, err := openMapping(f)
	if err != nil {
		return nil, err
	}
	s, err := openMapped(m)
	if err != nil {
		m.close()
		return nil, err
	}
	if !s.Mapped() {
		// Version-1 fallback: the snapshot was decoded eagerly and does not
		// reference the mapping.
		m.close()
	}
	return s, nil
}

// openMapped builds a mapped snapshot over m. Errors are returned without
// path context; callers wrap.
func openMapped(m *mapping) (*Snapshot, error) {
	d, version, err := checkEnvelope(m.data)
	if err != nil {
		return nil, err
	}
	if version == legacyFormatVersion {
		// v1 interleaves dictionaries and payloads, so there is nothing to
		// map lazily; decode it eagerly (decode copies everything out of the
		// mapping, so releasing it afterwards is safe).
		return decodeV1(d)
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("store: unsupported format version %d (want 1–%d)", version, FormatVersion)
	}
	h, err := parseHeaderV2(d)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		Name:        h.name,
		Version:     h.version,
		Hierarchies: h.hierarchies,
		rows:        h.rows,
		m:           m,
		dimOff:      h.dimOff,
		msOff:       h.msOff,
	}
	for _, dim := range h.dims {
		s.Dims = append(s.Dims, Column{Name: dim.name, Dict: dim.dict})
	}
	for _, name := range h.measureNames {
		s.Measures = append(s.Measures, MeasureColumn{Name: name})
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	if h.cubeOff != 0 {
		d.off = h.cubeOff
		payload := d.cubeSection()
		if d.err != nil {
			return nil, fmt.Errorf("store: decoding snapshot: %w", d.err)
		}
		if d.off != len(d.b) {
			return nil, fmt.Errorf("store: %d trailing bytes after snapshot payload", len(d.b)-d.off)
		}
		ds, err := s.Dataset()
		if err != nil {
			return nil, err
		}
		// cube.Decode copies everything it keeps, so the cube stays valid
		// independent of the mapping's lifetime.
		c, err := cube.Decode(payload, ds)
		if err != nil {
			return nil, fmt.Errorf("store: decoding cube section: %w", err)
		}
		s.attachCube(c)
	}
	return s, nil
}
