package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/data"
)

// demoDataset7 extends the demo dataset to 7 rows so the 4-byte code
// payloads need alignment padding (4·7 = 28 → padded to 32), reaching the
// zero-padding checks a 6-row fixture never exercises.
func demoDataset7() *data.Dataset {
	ds := demoDataset()
	ds.AppendRowVals([]string{"Raya", "Kukufto", "1987"}, []float64{5})
	return ds
}

// writeSnapshotFile persists a snapshot to a fresh temp file.
func writeSnapshotFile(t *testing.T, snap *Snapshot) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.rst")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenMappedRoundTrip(t *testing.T) {
	want := demoDataset7()
	snap := FromDataset(want)
	if err := snap.BuildCube(); err != nil {
		t.Fatal(err)
	}
	path := writeSnapshotFile(t, snap)
	got, err := OpenMappedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Mapped() {
		t.Fatal("snapshot did not open mapped")
	}
	if got.ResidentColumnBytes() != 0 {
		t.Errorf("mapped resident column bytes = %d, want 0", got.ResidentColumnBytes())
	}
	if rb := snap.ResidentColumnBytes(); rb != int64(snap.NumRows())*(4*3+8) {
		t.Errorf("eager resident column bytes = %d, want %d", rb, snap.NumRows()*(4*3+8))
	}
	if got.Cube() == nil {
		t.Fatal("cube lost through the mapped open")
	}
	// Mapped columns expose nil heap slices but live readers.
	for i := range got.Dims {
		if got.Dims[i].Codes != nil {
			t.Errorf("dimension %q materialized its codes", got.Dims[i].Name)
		}
		r := got.DimReader(i)
		col := want.Dim(got.Dims[i].Name)
		if r.Len() != len(col) {
			t.Fatalf("dimension %q reader Len = %d, want %d", got.Dims[i].Name, r.Len(), len(col))
		}
		for row := range col {
			if r.Value(row) != col[row] {
				t.Fatalf("dimension %q row %d = %q, want %q", got.Dims[i].Name, row, r.Value(row), col[row])
			}
		}
	}
	for i := range got.Measures {
		if got.Measures[i].Values != nil {
			t.Errorf("measure %q materialized its values", got.Measures[i].Name)
		}
		r := got.MeasureReader(i)
		col := want.Measure(got.Measures[i].Name)
		for row := range col {
			if r.At(row) != col[row] {
				t.Fatalf("measure %q row %d = %v, want %v", got.Measures[i].Name, row, r.At(row), col[row])
			}
		}
	}
	// The derived dataset serves every column through the cursor seam.
	back, err := got.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, back, want)
	if err := got.Close(); err != nil {
		t.Fatal(err)
	}
	if err := got.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestOpenMappedLegacyFallsBackEager(t *testing.T) {
	snap := FromDataset(demoDataset7())
	var buf bytes.Buffer
	if err := snap.writeLegacy(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v1.rst")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := OpenMappedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mapped() {
		t.Fatal("v1 file claims to be mapped")
	}
	back, err := got.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, back, demoDataset7())
	if err := got.Close(); err != nil {
		t.Fatalf("Close on the eager fallback: %v", err)
	}
}

// TestLegacyFormatStillOpens pins v1 compatibility: files written by the
// previous inline-payload encoder (with and without a cube section) must
// decode to the same dataset the v2 path produces.
func TestLegacyFormatStillOpens(t *testing.T) {
	for _, withCube := range []bool{false, true} {
		name := "plain"
		if withCube {
			name = "cube"
		}
		t.Run(name, func(t *testing.T) {
			snap := FromDataset(demoDataset7())
			if withCube {
				if err := snap.BuildCube(); err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := snap.writeLegacy(&buf); err != nil {
				t.Fatal(err)
			}
			if v := buf.Bytes()[len(magic)]; v != legacyFormatVersion {
				t.Fatalf("legacy writer emitted version %d", v)
			}
			got, err := Open(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if (got.Cube() != nil) != withCube {
				t.Fatalf("cube presence = %v, want %v", got.Cube() != nil, withCube)
			}
			back, err := got.Dataset()
			if err != nil {
				t.Fatal(err)
			}
			assertDatasetsEqual(t, back, demoDataset7())
		})
	}
}

// TestOpenMappedRejectsTruncationEverywhere is the mapped twin of the eager
// sweep: every byte-level truncation must fail cleanly through the mmap path
// too (and must not leak the mapping — the -race/leak canary is that no cut
// ever opens).
func TestOpenMappedRejectsTruncationEverywhere(t *testing.T) {
	good := cubeSnapshotBytes(t)
	path := filepath.Join(t.TempDir(), "cut.rst")
	for cut := 0; cut < len(good); cut++ {
		if err := os.WriteFile(path, good[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if s, err := OpenMappedFile(path); err == nil {
			s.Close()
			t.Fatalf("truncation at offset %d/%d mapped successfully", cut, len(good))
		}
	}
}

// headerCRCAt locates the v2 header checksum by scanning for the offset
// whose stored word matches the CRC of everything before it (the header
// length is not recorded explicitly). payload excludes the tail CRC.
func headerCRCAt(t *testing.T, payload []byte) int {
	t.Helper()
	for end := len(magic) + 1; end+4 <= len(payload); end++ {
		if crcOf(payload[:end]) == binary.LittleEndian.Uint32(payload[end:]) {
			return end
		}
	}
	t.Fatal("v2 header checksum not found")
	return 0
}

// resealHeader recomputes the v2 header checksum after a deliberate edit.
func resealHeader(b []byte, hdrEnd int) {
	binary.LittleEndian.PutUint32(b[hdrEnd:], crcOf(b[:hdrEnd]))
}

// TestOpenRejectsDirectoryTampering damages the v2 offset directory and its
// surroundings with every checksum re-sealed, so the structural validation —
// offset contiguity, cube-offset consistency, zero padding — is what rejects
// the file, identically through the eager and mapped paths.
func TestOpenRejectsDirectoryTampering(t *testing.T) {
	snap := FromDataset(demoDataset7())
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	hdrEnd := headerCRCAt(t, good[:len(good)-4])
	entries := len(snap.Dims) + len(snap.Measures) + 1 // offsets + cubeOff
	dirStart := hdrEnd - 8*entries
	dimOff0 := int(binary.LittleEndian.Uint64(good[dirStart:]))

	cases := []struct {
		name   string
		mutate func(b []byte)
		want   string
	}{
		{"shifted dimension offset", func(b []byte) {
			binary.LittleEndian.PutUint64(b[dirStart:], uint64(dimOff0+8))
			resealHeader(b, hdrEnd)
		}, "payload offset"},
		{"bogus cube offset", func(b []byte) {
			binary.LittleEndian.PutUint64(b[hdrEnd-8:], 16)
			resealHeader(b, hdrEnd)
		}, "cube section offset"},
		{"header bit flip", func(b []byte) {
			b[len(magic)+2] ^= 0x20
		}, "header checksum mismatch"},
		{"nonzero payload padding", func(b []byte) {
			// 7 rows × 4 bytes = 28: the first code payload ends 4 bytes
			// short of its 8-byte boundary.
			b[dimOff0+4*snap.NumRows()] = 0xFF
		}, "nonzero alignment padding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), good...)
			tc.mutate(b)
			reseal(b)
			if _, err := Open(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("eager err = %v, want %q", err, tc.want)
			}
			path := filepath.Join(t.TempDir(), "tampered.rst")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			if s, err := OpenMappedFile(path); err == nil || !strings.Contains(err.Error(), tc.want) {
				if err == nil {
					s.Close()
				}
				t.Fatalf("mapped err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestOpenErrorsIncludePath asserts every file-opening variant wraps decode
// failures with the offending path, so multi-dataset logs identify the bad
// file.
func TestOpenErrorsIncludePath(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := FromDataset(demoDataset()).Write(&buf); err != nil {
		t.Fatal(err)
	}
	single := buf.Bytes()
	buf.Reset()
	if err := WriteSharded(&buf, "district", splitShards(t, demoDataset7(), 2)); err != nil {
		t.Fatal(err)
	}
	sharded := buf.Bytes()

	corrupt := func(name string, b []byte) string {
		bad := append([]byte(nil), b...)
		bad[len(bad)/2] ^= 0x40
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	singlePath := corrupt("single.rst", single)
	shardedPath := corrupt("sharded.rst", sharded)

	if _, err := OpenFile(singlePath); err == nil || !strings.Contains(err.Error(), singlePath) {
		t.Errorf("OpenFile err = %v, want it to name %s", err, singlePath)
	}
	if _, err := OpenMappedFile(singlePath); err == nil || !strings.Contains(err.Error(), singlePath) {
		t.Errorf("OpenMappedFile err = %v, want it to name %s", err, singlePath)
	}
	if _, _, err := OpenShardedFile(shardedPath); err == nil || !strings.Contains(err.Error(), shardedPath) {
		t.Errorf("OpenShardedFile err = %v, want it to name %s", err, shardedPath)
	}
	if _, _, err := OpenShardedMappedFile(shardedPath); err == nil || !strings.Contains(err.Error(), shardedPath) {
		t.Errorf("OpenShardedMappedFile err = %v, want it to name %s", err, shardedPath)
	}
}

func TestBuilderAppendRejectsMappedSnapshot(t *testing.T) {
	path := writeSnapshotFile(t, FromDataset(demoDataset()))
	snap, err := OpenMappedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	b := NewBuilder(snap)
	_, err = b.Append([]Row{{Dims: []string{"Ofla", "Zata", "1986"}, Measures: []float64{1}}})
	if err == nil || !strings.Contains(err.Error(), "re-open it eagerly") {
		t.Fatalf("append to mapped snapshot: err = %v, want re-open hint", err)
	}
}

// splitShards splits a dataset's rows round-robin into n shards sharing one
// dictionary set — a store-level stand-in for internal/shard output (the
// format validates key rootness and per-shard invariants, not routing, which
// is an engine concern).
func splitShards(t testing.TB, ds *data.Dataset, n int) []*Snapshot {
	t.Helper()
	src := FromDataset(ds)
	shards := make([]*Snapshot, n)
	for si := 0; si < n; si++ {
		var rows []int
		for r := si; r < src.NumRows(); r += n {
			rows = append(rows, r)
		}
		dims := make([]Column, len(src.Dims))
		for ci, c := range src.Dims {
			codes := make([]uint32, len(rows))
			for i, r := range rows {
				codes[i] = c.Codes[r]
			}
			dims[ci] = Column{Name: c.Name, Dict: c.Dict, Codes: codes}
		}
		ms := make([]MeasureColumn, len(src.Measures))
		for mi, m := range src.Measures {
			vals := make([]float64, len(rows))
			for i, r := range rows {
				vals[i] = m.Values[r]
			}
			ms[mi] = MeasureColumn{Name: m.Name, Values: vals}
		}
		sn, err := NewSnapshot(src.Name, src.Version, src.Hierarchies, dims, ms, len(rows))
		if err != nil {
			t.Fatal(err)
		}
		shards[si] = sn
	}
	return shards
}

func TestOpenShardedMappedRoundTrip(t *testing.T) {
	want := demoDataset7()
	shards := splitShards(t, want, 3)
	path := filepath.Join(t.TempDir(), "sharded.rst")
	if err := WriteShardedFile(path, "district", shards); err != nil {
		t.Fatal(err)
	}
	key, eager, err := OpenShardedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mkey, mapped, err := OpenShardedMappedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if key != "district" || mkey != key || len(mapped) != len(eager) || len(mapped) != 3 {
		t.Fatalf("keys (%q, %q), shards (%d eager, %d mapped)", key, mkey, len(eager), len(mapped))
	}
	for si := range mapped {
		if !mapped[si].Mapped() {
			t.Fatalf("shard %d did not open mapped", si)
		}
		eds, err := eager[si].Dataset()
		if err != nil {
			t.Fatal(err)
		}
		mds, err := mapped[si].Dataset()
		if err != nil {
			t.Fatal(err)
		}
		assertDatasetsEqual(t, mds, eds)
	}
	// All shards share one refcounted mapping: closing one keeps the others
	// readable; the last Close releases the pages.
	m := mapped[0].m
	for si := 1; si < len(mapped); si++ {
		if mapped[si].m != m {
			t.Fatal("shards do not share one mapping")
		}
	}
	if err := mapped[0].Close(); err != nil {
		t.Fatal(err)
	}
	if m.data == nil {
		t.Fatal("mapping released while shards still reference it")
	}
	if got := mapped[1].DimReader(0).Value(0); got == "" {
		t.Fatal("surviving shard unreadable after sibling Close")
	}
	if err := mapped[1].Close(); err != nil {
		t.Fatal(err)
	}
	if err := mapped[2].Close(); err != nil {
		t.Fatal(err)
	}
	if m.data != nil {
		t.Fatal("mapping still live after the last shard closed")
	}
}

// TestLegacyShardedFormatStillOpens pins v1 partitioned compatibility,
// through both the eager decoder and the OpenShardedMapped eager fallback.
func TestLegacyShardedFormatStillOpens(t *testing.T) {
	want := demoDataset7()
	shards := splitShards(t, want, 2)
	var buf bytes.Buffer
	if err := writeShardedLegacy(&buf, "district", shards); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[len(shardMagic)]; v != legacyShardFormatVersion {
		t.Fatalf("legacy sharded writer emitted version %d", v)
	}
	path := filepath.Join(t.TempDir(), "v1-sharded.rst")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	key, eager, err := OpenShardedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mkey, fallback, err := OpenShardedMappedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if key != "district" || mkey != key || len(eager) != 2 || len(fallback) != 2 {
		t.Fatalf("keys (%q, %q), shards (%d, %d)", key, mkey, len(eager), len(fallback))
	}
	for si := range eager {
		if fallback[si].Mapped() {
			t.Fatalf("v1 shard %d claims to be mapped", si)
		}
		for _, sn := range []*Snapshot{eager[si], fallback[si]} {
			got, err := sn.Dataset()
			if err != nil {
				t.Fatal(err)
			}
			eds, err := shards[si].Dataset()
			if err != nil {
				t.Fatal(err)
			}
			assertDatasetsEqual(t, got, eds)
		}
	}
}

// TestOpenShardedRejectsTruncationEverywhere cuts a v2 partitioned file at
// every byte offset — plain and with the tail CRC re-sealed — and asserts
// both the eager and mapped decoders fail cleanly on each.
func TestOpenShardedRejectsTruncationEverywhere(t *testing.T) {
	shards := splitShards(t, demoDataset7(), 2)
	var buf bytes.Buffer
	if err := WriteSharded(&buf, "district", shards); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	path := filepath.Join(t.TempDir(), "cut.rst")
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := OpenSharded(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at offset %d/%d opened successfully", cut, len(good))
		}
		if err := os.WriteFile(path, good[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ss, err := OpenShardedMappedFile(path); err == nil {
			for _, s := range ss {
				s.Close()
			}
			t.Fatalf("truncation at offset %d/%d mapped successfully", cut, len(good))
		}
	}
	for cut := 0; cut < len(good)-4; cut++ {
		b := append(append([]byte(nil), good[:cut]...), 0, 0, 0, 0)
		reseal(b)
		if _, _, err := OpenSharded(bytes.NewReader(b)); err == nil {
			t.Fatalf("resealed truncation at offset %d/%d opened successfully", cut, len(good))
		}
	}
}

// TestOpenShardedRejectsDirectoryTampering is the partitioned twin of the
// directory-tampering suite: every checksum is re-sealed so the shard-major
// offset directory's own validation rejects the file.
func TestOpenShardedRejectsDirectoryTampering(t *testing.T) {
	snap := FromDataset(demoDataset7())
	shards := splitShards(t, demoDataset7(), 3)
	var buf bytes.Buffer
	if err := WriteSharded(&buf, "district", shards); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	hdrEnd := headerCRCAt(t, good[:len(good)-4])
	entries := 3 * (len(snap.Dims) + len(snap.Measures))
	dirStart := hdrEnd - 8*entries
	dimOff0 := int(binary.LittleEndian.Uint64(good[dirStart:]))

	cases := []struct {
		name   string
		mutate func(b []byte)
		want   string
	}{
		{"shifted shard offset", func(b []byte) {
			binary.LittleEndian.PutUint64(b[dirStart:], uint64(dimOff0+8))
			resealHeader(b, hdrEnd)
		}, "payload offset"},
		{"header bit flip", func(b []byte) {
			b[len(shardMagic)+2] ^= 0x10
		}, "header checksum mismatch"},
		{"nonzero payload padding", func(b []byte) {
			// Shard 0 holds 3 of the 7 rows: its 12-byte code payload ends
			// 4 bytes short of the 8-byte boundary.
			b[dimOff0+4*shards[0].NumRows()] = 0xFF
		}, "nonzero alignment padding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), good...)
			tc.mutate(b)
			reseal(b)
			if _, _, err := OpenSharded(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("eager err = %v, want %q", err, tc.want)
			}
			path := filepath.Join(t.TempDir(), "tampered.rst")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ss, err := OpenShardedMappedFile(path); err == nil || !strings.Contains(err.Error(), tc.want) {
				for _, s := range ss {
					s.Close()
				}
				t.Fatalf("mapped err = %v, want %q", err, tc.want)
			}
		})
	}
}
