//go:build !unix

package store

import (
	"io"
	"os"
)

// mapFile falls back to reading the file into memory on platforms without
// mmap support: OpenMapped still works everywhere, it just loses the
// larger-than-RAM property there.
func mapFile(f *os.File, size int64) ([]byte, error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, err
	}
	return b, nil
}

// unmapFile releases a mapping created by mapFile.
func unmapFile(b []byte) error { return nil }
