//go:build unix

package store

import (
	"os"
	"syscall"
)

// mapFile memory-maps size bytes of f read-only. The mapping outlives the
// file descriptor, so callers may close f immediately after mapping.
func mapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapFile releases a mapping created by mapFile.
func unmapFile(b []byte) error {
	return syscall.Munmap(b)
}
