package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/data"
)

// The partitioned .rst binary layout, format version 1: one dataset hashed
// into N shards on a hierarchy-root dimension, dictionaries shared across the
// shards and written once, one column section per shard. Integers, varints
// and strings use the same primitives as the single-snapshot format.
//
//	[0:8)   magic "RSTSHARD"
//	[8]     shard format version (1)
//	        name            string
//	        version         uvarint   snapshot version (shared by every shard)
//	        key             string    the partition dimension (hierarchy root)
//	        #hierarchies    uvarint   then per hierarchy: name, #attrs, attrs
//	        #dims           uvarint   then per dim: name, #dict, dict values
//	                                  (the dictionaries shared by all shards)
//	        #measures       uvarint   then per measure: name
//	        #shards         uvarint
//	        per shard:      rows uvarint,
//	                        per dim rows×4 bytes of uint32 codes,
//	                        per measure rows×8 bytes of float64 bits,
//	                        uint32 CRC-32C of this shard's section bytes, so a
//	                        damaged shard is identified individually
//	[tail]  uint32 CRC-32C (Castagnoli) of every preceding byte
//
// Materialized cubes are not persisted: per-shard cubes are cheap to rebuild
// at registration time and keeping the file cube-free keeps shard sections
// self-describing.
var shardMagic = [8]byte{'R', 'S', 'T', 'S', 'H', 'A', 'R', 'D'}

// ShardFormatVersion is the current partitioned .rst format version.
const ShardFormatVersion = 1

// IsShardedFile reports whether the file at path starts with the partitioned
// snapshot magic. Both .rst flavors share the extension; callers sniff to
// pick Open or OpenSharded.
func IsShardedFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var m [8]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false, nil // too short to be partitioned; let Open diagnose
	}
	return m == shardMagic, nil
}

// WriteSharded serializes the shards of one partitioned dataset, checksum
// included. Every shard must carry the same name, version, hierarchies,
// column schema and — shard sections hold codes only — identical
// dictionaries; key names the dimension the rows were partitioned on.
func WriteSharded(w io.Writer, key string, shards []*Snapshot) error {
	if err := checkShardSet(key, shards); err != nil {
		return err
	}
	first := shards[0]
	h := crc32.New(castagnoli)
	bw := bufio.NewWriterSize(io.MultiWriter(w, h), 1<<16)
	e := &encoder{w: bw}
	e.bytes(shardMagic[:])
	e.byte(ShardFormatVersion)
	e.string(first.Name)
	e.uvarint(first.Version)
	e.string(key)
	e.uvarint(uint64(len(first.Hierarchies)))
	for _, hr := range first.Hierarchies {
		e.string(hr.Name)
		e.uvarint(uint64(len(hr.Attrs)))
		for _, a := range hr.Attrs {
			e.string(a)
		}
	}
	e.uvarint(uint64(len(first.Dims)))
	for _, c := range first.Dims {
		e.string(c.Name)
		e.uvarint(uint64(len(c.Dict)))
		for _, v := range c.Dict {
			e.string(v)
		}
	}
	e.uvarint(uint64(len(first.Measures)))
	for _, m := range first.Measures {
		e.string(m.Name)
	}
	e.uvarint(uint64(len(shards)))
	// Each shard section is staged in memory so its own CRC can follow it;
	// Open reads the whole file into memory anyway, so the staging buffer
	// does not change the peak footprint class.
	var section bytes.Buffer
	for _, s := range shards {
		section.Reset()
		sw := bufio.NewWriter(&section)
		se := &encoder{w: sw}
		se.uvarint(uint64(s.rows))
		for _, c := range s.Dims {
			se.codes(c.Codes)
		}
		for _, m := range s.Measures {
			se.floats(m.Values)
		}
		if se.err == nil {
			se.err = sw.Flush()
		}
		if se.err != nil {
			return fmt.Errorf("store: writing shard section: %w", se.err)
		}
		e.bytes(section.Bytes())
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(section.Bytes(), castagnoli))
		e.bytes(sum[:])
	}
	if e.err != nil {
		return fmt.Errorf("store: writing partitioned snapshot: %w", e.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: writing partitioned snapshot: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], h.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("store: writing partitioned snapshot checksum: %w", err)
	}
	return nil
}

// WriteShardedFile writes the partitioned snapshot to path atomically
// (temp file + rename).
func WriteShardedFile(path, key string, shards []*Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteSharded(f, key, shards); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// checkShardSet verifies the writer's preconditions: a non-empty shard list
// sharing one schema and one set of dictionary contents, partitioned on a
// hierarchy-root dimension.
func checkShardSet(key string, shards []*Snapshot) error {
	if len(shards) == 0 {
		return fmt.Errorf("store: partitioned snapshot needs at least one shard")
	}
	first := shards[0]
	if err := checkShardKey(key, first.Hierarchies); err != nil {
		return err
	}
	for i, s := range shards[1:] {
		si := i + 1
		if s.Name != first.Name || s.Version != first.Version {
			return fmt.Errorf("store: shard %d is %q v%d, shard 0 is %q v%d", si, s.Name, s.Version, first.Name, first.Version)
		}
		if len(s.Dims) != len(first.Dims) || len(s.Measures) != len(first.Measures) {
			return fmt.Errorf("store: shard %d schema differs from shard 0", si)
		}
		for ci, c := range s.Dims {
			fc := first.Dims[ci]
			if c.Name != fc.Name {
				return fmt.Errorf("store: shard %d dimension %d is %q, shard 0 has %q", si, ci, c.Name, fc.Name)
			}
			if !equalDict(c.Dict, fc.Dict) {
				return fmt.Errorf("store: shard %d dimension %q dictionary differs from shard 0 (dictionaries must be shared)", si, c.Name)
			}
		}
		for mi, m := range s.Measures {
			if m.Name != first.Measures[mi].Name {
				return fmt.Errorf("store: shard %d measure %d is %q, shard 0 has %q", si, mi, m.Name, first.Measures[mi].Name)
			}
		}
	}
	return nil
}

// checkShardKey verifies the partition key is the root attribute of one of
// the hierarchies — the invariant the byte-identity guarantee rests on.
func checkShardKey(key string, hierarchies []data.Hierarchy) error {
	if key == "" {
		return fmt.Errorf("store: partitioned snapshot needs a partition key")
	}
	for _, h := range hierarchies {
		if len(h.Attrs) > 0 && h.Attrs[0] == key {
			return nil
		}
	}
	return fmt.Errorf("store: partition key %q is not the root attribute of any hierarchy", key)
}

// equalDict reports whether two dictionaries hold the same values in the same
// order. Shards produced by internal/shard share one backing array, so the
// common case short-circuits on identity.
func equalDict(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) > 0 && &a[0] == &b[0] {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// OpenSharded decodes and validates a partitioned snapshot from r: the file
// checksum, every shard's own section checksum, each shard's structural
// invariants and hierarchy functional dependencies. The returned snapshots
// share one set of dictionary slices, in shard order.
func OpenSharded(r io.Reader) (key string, shards []*Snapshot, err error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return "", nil, fmt.Errorf("store: reading partitioned snapshot: %w", err)
	}
	return decodeSharded(b)
}

// OpenShardedFile loads a partitioned .rst snapshot from disk.
func OpenShardedFile(path string) (string, []*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	key, shards, err := decodeSharded(b)
	if err != nil {
		return "", nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return key, shards, nil
}

func decodeSharded(b []byte) (string, []*Snapshot, error) {
	if len(b) < len(shardMagic)+1+4 {
		return "", nil, fmt.Errorf("store: partitioned snapshot truncated (%d bytes)", len(b))
	}
	payload, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return "", nil, fmt.Errorf("store: partitioned snapshot checksum mismatch (file %08x, computed %08x)", want, got)
	}
	d := &decoder{b: payload}
	var m [8]byte
	copy(m[:], d.bytes(len(shardMagic)))
	if d.err == nil && m != shardMagic {
		if bytes.Equal(m[:len(magic)], magic[:]) {
			return "", nil, fmt.Errorf("store: file is a single snapshot, not a partitioned one; open it with Open")
		}
		return "", nil, fmt.Errorf("store: bad magic %q: not a partitioned .rst snapshot", m[:])
	}
	if v := d.byte(); d.err == nil && v != ShardFormatVersion {
		return "", nil, fmt.Errorf("store: unsupported partitioned format version %d (want %d)", v, ShardFormatVersion)
	}
	name := d.string()
	version := d.uvarint()
	key := d.string()
	var hierarchies []data.Hierarchy
	for i, nh := 0, d.count(); i < nh && d.err == nil; i++ {
		h := data.Hierarchy{Name: d.string()}
		for j, na := 0, d.count(); j < na && d.err == nil; j++ {
			h.Attrs = append(h.Attrs, d.string())
		}
		hierarchies = append(hierarchies, h)
	}
	type dimSchema struct {
		name string
		dict []string
	}
	var dims []dimSchema
	for i, nd := 0, d.count(); i < nd && d.err == nil; i++ {
		ds := dimSchema{name: d.string()}
		ndict := d.count()
		ds.dict = make([]string, 0, min(ndict, 1<<16))
		for j := 0; j < ndict && d.err == nil; j++ {
			ds.dict = append(ds.dict, d.string())
		}
		dims = append(dims, ds)
	}
	var measureNames []string
	for i, nm := 0, d.count(); i < nm && d.err == nil; i++ {
		measureNames = append(measureNames, d.string())
	}
	nshards := d.count()
	if d.err == nil && nshards == 0 {
		return "", nil, fmt.Errorf("store: partitioned snapshot has no shards")
	}
	var shards []*Snapshot
	for si := 0; si < nshards && d.err == nil; si++ {
		start := d.off
		rows := d.uvarint()
		if rows > maxSaneCount {
			return "", nil, fmt.Errorf("store: shard %d: implausible row count %d", si, rows)
		}
		s := &Snapshot{
			Name:        name,
			Version:     version,
			Hierarchies: hierarchies,
			rows:        int(rows),
		}
		for _, dim := range dims {
			s.Dims = append(s.Dims, Column{Name: dim.name, Dict: dim.dict, Codes: d.codes(s.rows)})
		}
		for _, mn := range measureNames {
			s.Measures = append(s.Measures, MeasureColumn{Name: mn, Values: d.floats(s.rows)})
		}
		sectionEnd := d.off
		sum := d.bytes(4)
		if d.err != nil {
			break
		}
		if got, want := crc32.Checksum(payload[start:sectionEnd], castagnoli), binary.LittleEndian.Uint32(sum); got != want {
			return "", nil, fmt.Errorf("store: shard %d section checksum mismatch (file %08x, computed %08x)", si, want, got)
		}
		shards = append(shards, s)
	}
	if d.err != nil {
		return "", nil, fmt.Errorf("store: decoding partitioned snapshot: %w", d.err)
	}
	if len(d.b) != d.off {
		return "", nil, fmt.Errorf("store: %d trailing bytes after partitioned snapshot payload", len(d.b)-d.off)
	}
	if err := checkShardKey(key, hierarchies); err != nil {
		return "", nil, err
	}
	for si, s := range shards {
		if err := s.validate(); err != nil {
			return "", nil, fmt.Errorf("store: shard %d: %w", si, err)
		}
	}
	return key, shards, nil
}
