package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/data"
)

// The partitioned .rst binary layouts are documented in doc.go: one dataset
// hashed into N shards on a hierarchy-root dimension, dictionaries shared
// across the shards and written once. Version 2 (the current writer output)
// keeps a CRC-checked byte-offset directory in the header and 8-byte-aligned
// per-shard column payloads, so OpenShardedMapped can serve every shard out
// of one file mapping; version 1 (inline shard sections, each with its own
// CRC) still opens via the eager path. Materialized cubes are not persisted:
// per-shard cubes are cheap to rebuild at registration time.
var shardMagic = [8]byte{'R', 'S', 'T', 'S', 'H', 'A', 'R', 'D'}

// ShardFormatVersion is the current partitioned .rst format version.
const ShardFormatVersion = 2

// legacyShardFormatVersion is the previous inline-section format, still
// readable.
const legacyShardFormatVersion = 1

// IsShardedFile reports whether the file at path starts with the partitioned
// snapshot magic. Both .rst flavors share the extension; callers sniff to
// pick Open or OpenSharded.
func IsShardedFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var m [8]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false, nil // too short to be partitioned; let Open diagnose
	}
	return m == shardMagic, nil
}

// WriteSharded serializes the shards of one partitioned dataset in format
// version 2 (offset directory + aligned payloads), checksum included. Every
// shard must carry the same name, version, hierarchies, column schema and —
// payloads hold codes only — identical dictionaries; key names the dimension
// the rows were partitioned on. Mapped shards write through their
// lazily-decoded column readers.
func WriteSharded(w io.Writer, key string, shards []*Snapshot) error {
	if err := checkShardSet(key, shards); err != nil {
		return err
	}
	first := shards[0]
	// Stage the header in memory — see Snapshot.Write: the directory holds
	// absolute payload offsets, so the header's size must be known before the
	// first payload byte is placed.
	var hb bytes.Buffer
	hw := bufio.NewWriterSize(&hb, 1<<12)
	e := &encoder{w: hw}
	e.bytes(shardMagic[:])
	e.byte(ShardFormatVersion)
	e.string(first.Name)
	e.uvarint(first.Version)
	e.string(key)
	e.uvarint(uint64(len(first.Hierarchies)))
	for _, hr := range first.Hierarchies {
		e.string(hr.Name)
		e.uvarint(uint64(len(hr.Attrs)))
		for _, a := range hr.Attrs {
			e.string(a)
		}
	}
	e.uvarint(uint64(len(first.Dims)))
	for _, c := range first.Dims {
		e.string(c.Name)
		e.uvarint(uint64(len(c.Dict)))
		for _, v := range c.Dict {
			e.string(v)
		}
	}
	e.uvarint(uint64(len(first.Measures)))
	for _, m := range first.Measures {
		e.string(m.Name)
	}
	e.uvarint(uint64(len(shards)))
	for _, s := range shards {
		e.uvarint(uint64(s.rows))
	}
	if e.err == nil {
		e.err = hw.Flush()
	}
	if e.err != nil {
		return fmt.Errorf("store: writing partitioned snapshot: %w", e.err)
	}

	// Directory: per shard, one u64 offset per dimension then per measure,
	// followed by the header CRC.
	perShard := len(first.Dims) + len(first.Measures)
	headerLen := hb.Len() + 8*len(shards)*perShard + 4
	off := align8(headerLen)
	offs := make([]uint64, 0, len(shards)*perShard)
	for _, s := range shards {
		for range s.Dims {
			offs = append(offs, uint64(off))
			off = align8(off + 4*s.rows)
		}
		for range s.Measures {
			offs = append(offs, uint64(off))
			off = align8(off + 8*s.rows)
		}
	}
	var u8 [8]byte
	for _, o := range offs {
		binary.LittleEndian.PutUint64(u8[:], o)
		hb.Write(u8[:])
	}
	binary.LittleEndian.PutUint32(u8[:4], crc32.Checksum(hb.Bytes(), castagnoli))
	hb.Write(u8[:4])

	h := crc32.New(castagnoli)
	bw := bufio.NewWriterSize(io.MultiWriter(w, h), 1<<16)
	we := &encoder{w: bw}
	we.bytes(hb.Bytes())
	we.pad(align8(headerLen) - headerLen)
	for _, s := range shards {
		for i := range s.Dims {
			if c := &s.Dims[i]; c.Codes != nil {
				we.codes(c.Codes)
			} else {
				we.codesFrom(s.DimReader(i))
			}
			we.pad(align8(4*s.rows) - 4*s.rows)
		}
		for i := range s.Measures {
			if m := &s.Measures[i]; m.Values != nil {
				we.floats(m.Values)
			} else {
				we.floatsFrom(s.MeasureReader(i))
			}
			we.pad(align8(8*s.rows) - 8*s.rows)
		}
	}
	if we.err != nil {
		return fmt.Errorf("store: writing partitioned snapshot: %w", we.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: writing partitioned snapshot: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], h.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("store: writing partitioned snapshot checksum: %w", err)
	}
	return nil
}

// writeShardedLegacy serializes the shards in format version 1 (inline shard
// sections, each with its own CRC). It is kept so tests can produce v1
// fixtures and prove old partitioned files keep opening byte-identically.
func writeShardedLegacy(w io.Writer, key string, shards []*Snapshot) error {
	if err := checkShardSet(key, shards); err != nil {
		return err
	}
	first := shards[0]
	h := crc32.New(castagnoli)
	bw := bufio.NewWriterSize(io.MultiWriter(w, h), 1<<16)
	e := &encoder{w: bw}
	e.bytes(shardMagic[:])
	e.byte(legacyShardFormatVersion)
	e.string(first.Name)
	e.uvarint(first.Version)
	e.string(key)
	e.uvarint(uint64(len(first.Hierarchies)))
	for _, hr := range first.Hierarchies {
		e.string(hr.Name)
		e.uvarint(uint64(len(hr.Attrs)))
		for _, a := range hr.Attrs {
			e.string(a)
		}
	}
	e.uvarint(uint64(len(first.Dims)))
	for _, c := range first.Dims {
		e.string(c.Name)
		e.uvarint(uint64(len(c.Dict)))
		for _, v := range c.Dict {
			e.string(v)
		}
	}
	e.uvarint(uint64(len(first.Measures)))
	for _, m := range first.Measures {
		e.string(m.Name)
	}
	e.uvarint(uint64(len(shards)))
	// Each shard section is staged in memory so its own CRC can follow it.
	var section bytes.Buffer
	for _, s := range shards {
		section.Reset()
		sw := bufio.NewWriter(&section)
		se := &encoder{w: sw}
		se.uvarint(uint64(s.rows))
		for _, c := range s.Dims {
			se.codes(c.Codes)
		}
		for _, m := range s.Measures {
			se.floats(m.Values)
		}
		if se.err == nil {
			se.err = sw.Flush()
		}
		if se.err != nil {
			return fmt.Errorf("store: writing shard section: %w", se.err)
		}
		e.bytes(section.Bytes())
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(section.Bytes(), castagnoli))
		e.bytes(sum[:])
	}
	if e.err != nil {
		return fmt.Errorf("store: writing partitioned snapshot: %w", e.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: writing partitioned snapshot: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], h.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("store: writing partitioned snapshot checksum: %w", err)
	}
	return nil
}

// WriteShardedFile writes the partitioned snapshot to path atomically
// (temp file + rename).
func WriteShardedFile(path, key string, shards []*Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteSharded(f, key, shards); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// checkShardSet verifies the writer's preconditions: a non-empty shard list
// sharing one schema and one set of dictionary contents, partitioned on a
// hierarchy-root dimension.
func checkShardSet(key string, shards []*Snapshot) error {
	if len(shards) == 0 {
		return fmt.Errorf("store: partitioned snapshot needs at least one shard")
	}
	first := shards[0]
	if err := checkShardKey(key, first.Hierarchies); err != nil {
		return err
	}
	for i, s := range shards[1:] {
		si := i + 1
		if s.Name != first.Name || s.Version != first.Version {
			return fmt.Errorf("store: shard %d is %q v%d, shard 0 is %q v%d", si, s.Name, s.Version, first.Name, first.Version)
		}
		if len(s.Dims) != len(first.Dims) || len(s.Measures) != len(first.Measures) {
			return fmt.Errorf("store: shard %d schema differs from shard 0", si)
		}
		for ci, c := range s.Dims {
			fc := first.Dims[ci]
			if c.Name != fc.Name {
				return fmt.Errorf("store: shard %d dimension %d is %q, shard 0 has %q", si, ci, c.Name, fc.Name)
			}
			if !equalDict(c.Dict, fc.Dict) {
				return fmt.Errorf("store: shard %d dimension %q dictionary differs from shard 0 (dictionaries must be shared)", si, c.Name)
			}
		}
		for mi, m := range s.Measures {
			if m.Name != first.Measures[mi].Name {
				return fmt.Errorf("store: shard %d measure %d is %q, shard 0 has %q", si, mi, m.Name, first.Measures[mi].Name)
			}
		}
	}
	return nil
}

// checkShardKey verifies the partition key is the root attribute of one of
// the hierarchies — the invariant the byte-identity guarantee rests on.
func checkShardKey(key string, hierarchies []data.Hierarchy) error {
	if key == "" {
		return fmt.Errorf("store: partitioned snapshot needs a partition key")
	}
	for _, h := range hierarchies {
		if len(h.Attrs) > 0 && h.Attrs[0] == key {
			return nil
		}
	}
	return fmt.Errorf("store: partition key %q is not the root attribute of any hierarchy", key)
}

// equalDict reports whether two dictionaries hold the same values in the same
// order. Shards produced by internal/shard share one backing array, so the
// common case short-circuits on identity.
func equalDict(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) > 0 && &a[0] == &b[0] {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// OpenSharded decodes and validates a partitioned snapshot from r: the file
// checksum, the header or per-section checksums of the format version at
// hand, each shard's structural invariants and hierarchy functional
// dependencies. The returned snapshots share one set of dictionary slices,
// in shard order.
func OpenSharded(r io.Reader) (key string, shards []*Snapshot, err error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return "", nil, fmt.Errorf("store: reading partitioned snapshot: %w", err)
	}
	return decodeSharded(b)
}

// OpenShardedFile loads a partitioned .rst snapshot from disk.
func OpenShardedFile(path string) (string, []*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	key, shards, err := decodeSharded(b)
	if err != nil {
		return "", nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return key, shards, nil
}

func decodeSharded(b []byte) (string, []*Snapshot, error) {
	d, version, err := checkShardEnvelope(b)
	if err != nil {
		return "", nil, err
	}
	switch version {
	case legacyShardFormatVersion:
		return decodeShardedV1(d)
	case ShardFormatVersion:
		return decodeShardedV2(d)
	default:
		return "", nil, fmt.Errorf("store: unsupported partitioned format version %d (want 1–%d)", version, ShardFormatVersion)
	}
}

// checkShardEnvelope verifies the parts common to every partitioned format
// version — minimum length, whole-file tail CRC, magic — and returns a
// decoder positioned after the version byte.
func checkShardEnvelope(b []byte) (*decoder, byte, error) {
	if len(b) < len(shardMagic)+1+4 {
		return nil, 0, fmt.Errorf("store: partitioned snapshot truncated (%d bytes)", len(b))
	}
	payload, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return nil, 0, fmt.Errorf("store: partitioned snapshot checksum mismatch (file %08x, computed %08x)", want, got)
	}
	d := &decoder{b: payload}
	var m [8]byte
	copy(m[:], d.bytes(len(shardMagic)))
	if d.err == nil && m != shardMagic {
		if bytes.Equal(m[:len(magic)], magic[:]) {
			return nil, 0, fmt.Errorf("store: file is a single snapshot, not a partitioned one; open it with Open")
		}
		return nil, 0, fmt.Errorf("store: bad magic %q: not a partitioned .rst snapshot", m[:])
	}
	v := d.byte()
	if d.err != nil {
		return nil, 0, fmt.Errorf("store: decoding partitioned snapshot: %w", d.err)
	}
	return d, v, nil
}

// decodeShardedV1 decodes the legacy inline-section format.
func decodeShardedV1(d *decoder) (string, []*Snapshot, error) {
	name := d.string()
	version := d.uvarint()
	key := d.string()
	var hierarchies []data.Hierarchy
	for i, nh := 0, d.count(); i < nh && d.err == nil; i++ {
		h := data.Hierarchy{Name: d.string()}
		for j, na := 0, d.count(); j < na && d.err == nil; j++ {
			h.Attrs = append(h.Attrs, d.string())
		}
		hierarchies = append(hierarchies, h)
	}
	var dims []dimSchema
	for i, nd := 0, d.count(); i < nd && d.err == nil; i++ {
		ds := dimSchema{name: d.string()}
		ndict := d.count()
		ds.dict = make([]string, 0, min(ndict, 1<<16))
		for j := 0; j < ndict && d.err == nil; j++ {
			ds.dict = append(ds.dict, d.string())
		}
		dims = append(dims, ds)
	}
	var measureNames []string
	for i, nm := 0, d.count(); i < nm && d.err == nil; i++ {
		measureNames = append(measureNames, d.string())
	}
	nshards := d.count()
	if d.err == nil && nshards == 0 {
		return "", nil, fmt.Errorf("store: partitioned snapshot has no shards")
	}
	var shards []*Snapshot
	for si := 0; si < nshards && d.err == nil; si++ {
		start := d.off
		rows := d.uvarint()
		if rows > maxSaneCount {
			return "", nil, fmt.Errorf("store: shard %d: implausible row count %d", si, rows)
		}
		s := &Snapshot{
			Name:        name,
			Version:     version,
			Hierarchies: hierarchies,
			rows:        int(rows),
		}
		for _, dim := range dims {
			s.Dims = append(s.Dims, Column{Name: dim.name, Dict: dim.dict, Codes: d.codes(s.rows)})
		}
		for _, mn := range measureNames {
			s.Measures = append(s.Measures, MeasureColumn{Name: mn, Values: d.floats(s.rows)})
		}
		sectionEnd := d.off
		sum := d.bytes(4)
		if d.err != nil {
			break
		}
		if got, want := crc32.Checksum(d.b[start:sectionEnd], castagnoli), binary.LittleEndian.Uint32(sum); got != want {
			return "", nil, fmt.Errorf("store: shard %d section checksum mismatch (file %08x, computed %08x)", si, want, got)
		}
		shards = append(shards, s)
	}
	if d.err != nil {
		return "", nil, fmt.Errorf("store: decoding partitioned snapshot: %w", d.err)
	}
	if len(d.b) != d.off {
		return "", nil, fmt.Errorf("store: %d trailing bytes after partitioned snapshot payload", len(d.b)-d.off)
	}
	return finishShards(key, hierarchies, shards)
}

// decodeShardedV2 decodes the directory format eagerly: every shard's column
// payloads are materialized into heap slices, exactly like a v1 open.
func decodeShardedV2(d *decoder) (string, []*Snapshot, error) {
	h, err := parseShardHeaderV2(d)
	if err != nil {
		return "", nil, err
	}
	var shards []*Snapshot
	for si, rows := range h.shardRows {
		s := &Snapshot{
			Name:        h.name,
			Version:     h.version,
			Hierarchies: h.hierarchies,
			rows:        rows,
		}
		for ci, dim := range h.dims {
			d.off = h.dimOff[si][ci]
			s.Dims = append(s.Dims, Column{Name: dim.name, Dict: dim.dict, Codes: d.codes(rows)})
		}
		for mi, mn := range h.measureNames {
			d.off = h.msOff[si][mi]
			s.Measures = append(s.Measures, MeasureColumn{Name: mn, Values: d.floats(rows)})
		}
		if d.err != nil {
			return "", nil, fmt.Errorf("store: decoding partitioned snapshot: %w", d.err)
		}
		shards = append(shards, s)
	}
	return finishShards(h.key, h.hierarchies, shards)
}

// finishShards runs the post-decode validation shared by both format
// versions: the partition key and every shard's structural invariants.
func finishShards(key string, hierarchies []data.Hierarchy, shards []*Snapshot) (string, []*Snapshot, error) {
	if err := checkShardKey(key, hierarchies); err != nil {
		return "", nil, err
	}
	for si, s := range shards {
		if err := s.validate(); err != nil {
			return "", nil, fmt.Errorf("store: shard %d: %w", si, err)
		}
	}
	return key, shards, nil
}

// shardHeaderV2 is the parsed v2 partitioned header: shared schema plus the
// validated per-shard byte-offset directory.
type shardHeaderV2 struct {
	name         string
	version      uint64
	key          string
	hierarchies  []data.Hierarchy
	dims         []dimSchema
	measureNames []string
	shardRows    []int
	dimOff       [][]int // [shard][dim] absolute payload offsets
	msOff        [][]int // [shard][measure]
}

// parseShardHeaderV2 parses and fully validates a v2 partitioned header from
// a decoder positioned after the version byte: field structure, the header's
// own CRC, and the offset directory (in-bounds, contiguous, 8-aligned, zero
// padding, ending exactly at the file's tail CRC). After it returns, every
// shard payload's location is trusted.
func parseShardHeaderV2(d *decoder) (*shardHeaderV2, error) {
	h := &shardHeaderV2{}
	h.name = d.string()
	h.version = d.uvarint()
	h.key = d.string()
	for i, nh := 0, d.count(); i < nh && d.err == nil; i++ {
		hr := data.Hierarchy{Name: d.string()}
		for j, na := 0, d.count(); j < na && d.err == nil; j++ {
			hr.Attrs = append(hr.Attrs, d.string())
		}
		h.hierarchies = append(h.hierarchies, hr)
	}
	for i, nd := 0, d.count(); i < nd && d.err == nil; i++ {
		ds := dimSchema{name: d.string()}
		ndict := d.count()
		ds.dict = make([]string, 0, min(ndict, 1<<16))
		for j := 0; j < ndict && d.err == nil; j++ {
			ds.dict = append(ds.dict, d.string())
		}
		h.dims = append(h.dims, ds)
	}
	for i, nm := 0, d.count(); i < nm && d.err == nil; i++ {
		h.measureNames = append(h.measureNames, d.string())
	}
	nshards := d.count()
	if d.err == nil && nshards == 0 {
		return nil, fmt.Errorf("store: partitioned snapshot has no shards")
	}
	for si := 0; si < nshards && d.err == nil; si++ {
		rows := d.uvarint()
		if rows > maxSaneCount {
			return nil, fmt.Errorf("store: shard %d: implausible row count %d", si, rows)
		}
		h.shardRows = append(h.shardRows, int(rows))
	}
	for range h.shardRows {
		dimOff := make([]int, len(h.dims))
		for i := range dimOff {
			dimOff[i] = d.offset()
		}
		msOff := make([]int, len(h.measureNames))
		for i := range msOff {
			msOff[i] = d.offset()
		}
		h.dimOff = append(h.dimOff, dimOff)
		h.msOff = append(h.msOff, msOff)
	}
	hdrEnd := d.off
	sum := d.bytes(4)
	if d.err != nil {
		return nil, fmt.Errorf("store: decoding partitioned snapshot header: %w", d.err)
	}
	if got, want := crc32.Checksum(d.b[:hdrEnd], castagnoli), binary.LittleEndian.Uint32(sum); got != want {
		return nil, fmt.Errorf("store: header checksum mismatch (file %08x, computed %08x)", want, got)
	}
	// The directory is CRC-trusted; verify it describes this file — shard
	// payloads packed contiguously on 8-byte boundaries, zero padding, no
	// trailing bytes (partitioned files carry no cube section).
	expected := align8(d.off)
	if err := checkPadding(d.b, d.off, expected); err != nil {
		return nil, err
	}
	for si, rows := range h.shardRows {
		for ci, off := range h.dimOff[si] {
			if off != expected {
				return nil, fmt.Errorf("store: shard %d dimension %q payload offset %d, expected %d", si, h.dims[ci].name, off, expected)
			}
			end := off + 4*rows
			expected = align8(end)
			if expected > len(d.b) {
				return nil, fmt.Errorf("store: shard %d dimension %q payload exceeds file (ends %d, payload %d bytes)", si, h.dims[ci].name, expected, len(d.b))
			}
			if err := checkPadding(d.b, end, expected); err != nil {
				return nil, err
			}
		}
		for mi, off := range h.msOff[si] {
			if off != expected {
				return nil, fmt.Errorf("store: shard %d measure %q payload offset %d, expected %d", si, h.measureNames[mi], off, expected)
			}
			end := off + 8*rows
			expected = align8(end)
			if expected > len(d.b) {
				return nil, fmt.Errorf("store: shard %d measure %q payload exceeds file (ends %d, payload %d bytes)", si, h.measureNames[mi], expected, len(d.b))
			}
			if err := checkPadding(d.b, end, expected); err != nil {
				return nil, err
			}
		}
	}
	if expected != len(d.b) {
		return nil, fmt.Errorf("store: %d trailing bytes after partitioned snapshot payload", len(d.b)-expected)
	}
	return h, nil
}

// OpenShardedMappedFile memory-maps a partitioned .rst snapshot: the header
// (schema, shared dictionaries, offset directory) is parsed and CRC-checked,
// and every shard's columns are exposed as lazily-decoded readers over one
// shared file mapping. The mapping is released when the last shard is Closed.
//
// Version-1 files carry inline sections that cannot be mapped; they fall back
// to the eager path (the shards answer Mapped() == false).
func OpenShardedMappedFile(path string) (string, []*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	key, shards, err := OpenShardedMapped(f)
	if err != nil {
		return "", nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return key, shards, nil
}

// OpenShardedMapped maps the already-open file f (the descriptor may be
// closed afterwards; the mapping persists) and opens it like
// OpenShardedMappedFile. Errors carry no file path; OpenShardedMappedFile
// adds it.
func OpenShardedMapped(f *os.File) (string, []*Snapshot, error) {
	m, err := openMapping(f)
	if err != nil {
		return "", nil, err
	}
	key, shards, err := openShardedMapped(m)
	if err != nil {
		m.close()
		return "", nil, err
	}
	if len(shards) > 0 && !shards[0].Mapped() {
		// Version-1 fallback: the shards were decoded eagerly and do not
		// reference the mapping.
		m.close()
	}
	return key, shards, nil
}

// openShardedMapped builds mapped shard snapshots over m. Errors are returned
// without path context; callers wrap.
func openShardedMapped(m *mapping) (string, []*Snapshot, error) {
	d, version, err := checkShardEnvelope(m.data)
	if err != nil {
		return "", nil, err
	}
	if version == legacyShardFormatVersion {
		// v1 interleaves shard sections; nothing to map lazily. Decode eagerly
		// (the decoder copies everything out of the mapping, so the caller
		// releasing it afterwards is safe).
		return decodeShardedV1(d)
	}
	if version != ShardFormatVersion {
		return "", nil, fmt.Errorf("store: unsupported partitioned format version %d (want 1–%d)", version, ShardFormatVersion)
	}
	h, err := parseShardHeaderV2(d)
	if err != nil {
		return "", nil, err
	}
	var shards []*Snapshot
	for si, rows := range h.shardRows {
		s := &Snapshot{
			Name:        h.name,
			Version:     h.version,
			Hierarchies: h.hierarchies,
			rows:        rows,
			m:           m,
			dimOff:      h.dimOff[si],
			msOff:       h.msOff[si],
		}
		for _, dim := range h.dims {
			s.Dims = append(s.Dims, Column{Name: dim.name, Dict: dim.dict})
		}
		for _, mn := range h.measureNames {
			s.Measures = append(s.Measures, MeasureColumn{Name: mn})
		}
		shards = append(shards, s)
	}
	if _, _, err := finishShards(h.key, h.hierarchies, shards); err != nil {
		return "", nil, err
	}
	// Every shard co-owns the mapping: it is released when the last one
	// closes. Set the count only now — on the error paths above the caller
	// holds the single opening reference and closes it itself.
	m.refs.Store(int32(len(shards)))
	return h.key, shards, nil
}
