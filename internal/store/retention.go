package store

import (
	"fmt"
	"time"
)

// Time-windowed retention: a continuously-fed dataset bounds its history by
// dropping rows whose event time (a designated time dimension) has fallen
// more than a window behind the newest event. The horizon is event-time
// based, not wall-clock based — a paused feed never loses data, and
// enforcement is deterministic for a given row set, so tests and replicas
// agree on exactly which rows survive.

// eventTimeLayouts are the value shapes a time dimension may use, coarsest
// last. Plain years ("1986") parse through the "2006" layout.
var eventTimeLayouts = []string{
	time.RFC3339,
	"2006-01-02 15:04:05",
	"2006-01-02",
	"2006-01",
	"2006",
}

// ParseEventTime parses one time-dimension value. Values that match none of
// the supported layouts (RFC 3339 down to a bare year) report ok=false;
// retention keeps such rows forever rather than guessing.
func ParseEventTime(v string) (t time.Time, ok bool) {
	for _, layout := range eventTimeLayouts {
		if t, err := time.Parse(layout, v); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}

// eventTimes parses a dictionary once into per-code event times. Codes whose
// value does not parse get ok=false.
func eventTimes(dict []string) ([]time.Time, []bool) {
	ts := make([]time.Time, len(dict))
	ok := make([]bool, len(dict))
	for i, v := range dict {
		ts[i], ok[i] = ParseEventTime(v)
	}
	return ts, ok
}

// MaxEventTime returns the newest parseable event time appearing in the
// snapshot's rows on dim. ok is false when no row carries a parseable value
// (retention then has no horizon and keeps everything).
func MaxEventTime(s *Snapshot, dim string) (max time.Time, ok bool, err error) {
	c := s.dim(dim)
	if c == nil {
		return time.Time{}, false, fmt.Errorf("store: retention dimension %q is not a dimension of %q", dim, s.Name)
	}
	if s.Mapped() {
		return time.Time{}, false, fmt.Errorf("store: cannot enforce retention on memory-mapped snapshot %q; re-open it eagerly", s.Name)
	}
	ts, tok := eventTimes(c.Dict)
	// Scan rows, not the dictionary: earlier retention passes may have left
	// dictionary values no surviving row uses, and those must not anchor the
	// horizon.
	for _, code := range c.Codes {
		if tok[code] && (!ok || ts[code].After(max)) {
			max, ok = ts[code], true
		}
	}
	return max, ok, nil
}

// RetainAfter drops every row on dim strictly older than horizon (rows with
// unparsable time values are kept) and returns the surviving rows as a new
// snapshot at Version+1 sharing the receiver's dictionaries. When no row is
// dropped it returns (s, 0, nil) — same version, no copy. The base
// snapshot's materialized cube, if any, is rebuilt over the survivors.
func RetainAfter(s *Snapshot, dim string, horizon time.Time) (*Snapshot, int, error) {
	c := s.dim(dim)
	if c == nil {
		return nil, 0, fmt.Errorf("store: retention dimension %q is not a dimension of %q", dim, s.Name)
	}
	if s.Mapped() {
		return nil, 0, fmt.Errorf("store: cannot enforce retention on memory-mapped snapshot %q; re-open it eagerly", s.Name)
	}
	ts, tok := eventTimes(c.Dict)
	keep := make([]int, 0, len(c.Codes))
	for row, code := range c.Codes {
		if !tok[code] || !ts[code].Before(horizon) {
			keep = append(keep, row)
		}
	}
	dropped := len(c.Codes) - len(keep)
	if dropped == 0 {
		return s, 0, nil
	}
	next, err := filterRows(s, keep, s.Version+1)
	if err != nil {
		return nil, 0, err
	}
	return next, dropped, nil
}

// Retain is the one-snapshot convenience: it computes the horizon (newest
// event on dim minus window) and drops the rows behind it. The returned
// horizon is the zero time when no row carries a parseable event time.
func Retain(s *Snapshot, dim string, window time.Duration) (*Snapshot, int, time.Time, error) {
	max, ok, err := MaxEventTime(s, dim)
	if err != nil {
		return nil, 0, time.Time{}, err
	}
	if !ok {
		return s, 0, time.Time{}, nil
	}
	horizon := max.Add(-window)
	next, dropped, err := RetainAfter(s, dim, horizon)
	if err != nil {
		return nil, 0, time.Time{}, err
	}
	return next, dropped, horizon, nil
}

// WithVersion returns a snapshot sharing every column of s but stamped with
// the given version — the cheap way to move an untouched shard to its
// siblings' new version after retention dropped rows elsewhere. The cube
// carries over as-is: the rows are identical.
func WithVersion(s *Snapshot, version uint64) *Snapshot {
	next := &Snapshot{
		Name:        s.Name,
		Version:     version,
		Hierarchies: s.Hierarchies,
		Dims:        s.Dims,
		Measures:    s.Measures,
		rows:        s.rows,
	}
	if s.cube != nil {
		next.attachCube(s.cube)
	}
	return next
}

// filterRows materializes the kept rows into a fresh snapshot at version,
// sharing the receiver's dictionaries (codes stay valid — a dictionary is
// allowed to carry values no row uses). The cube, if present, is rebuilt:
// dropping rows cannot be delta-merged.
func filterRows(s *Snapshot, keep []int, version uint64) (*Snapshot, error) {
	dims := make([]Column, len(s.Dims))
	for ci, c := range s.Dims {
		codes := make([]uint32, len(keep))
		for i, row := range keep {
			codes[i] = c.Codes[row]
		}
		dims[ci] = Column{Name: c.Name, Dict: c.Dict, Codes: codes}
	}
	measures := make([]MeasureColumn, len(s.Measures))
	for mi, m := range s.Measures {
		vals := make([]float64, len(keep))
		for i, row := range keep {
			vals[i] = m.Values[row]
		}
		measures[mi] = MeasureColumn{Name: m.Name, Values: vals}
	}
	next, err := NewSnapshot(s.Name, version, s.Hierarchies, dims, measures, len(keep))
	if err != nil {
		return nil, fmt.Errorf("store: retention filter: %w", err)
	}
	if s.cube != nil {
		if err := next.BuildCube(); err != nil {
			return nil, fmt.Errorf("store: rebuilding cube after retention: %w", err)
		}
	}
	return next, nil
}
