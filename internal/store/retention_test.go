package store

import (
	"testing"
	"time"

	"repro/internal/data"
)

func TestParseEventTime(t *testing.T) {
	cases := []struct {
		in   string
		ok   bool
		want string
	}{
		{"1986", true, "1986-01-01T00:00:00Z"},
		{"1986-07", true, "1986-07-01T00:00:00Z"},
		{"1986-07-15", true, "1986-07-15T00:00:00Z"},
		{"1986-07-15 08:30:00", true, "1986-07-15T08:30:00Z"},
		{"1986-07-15T08:30:00Z", true, "1986-07-15T08:30:00Z"},
		{"Ofla", false, ""},
		{"", false, ""},
		{"19", false, ""},
	}
	for _, tc := range cases {
		got, ok := ParseEventTime(tc.in)
		if ok != tc.ok {
			t.Errorf("ParseEventTime(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			continue
		}
		if ok && got.UTC().Format(time.RFC3339) != tc.want {
			t.Errorf("ParseEventTime(%q) = %s, want %s", tc.in, got.UTC().Format(time.RFC3339), tc.want)
		}
	}
}

// yearsWindow is a retention window spanning roughly n years of event time.
func yearsWindow(n int) time.Duration { return time.Duration(n) * 365 * 24 * time.Hour }

func TestRetainDropsOldestRows(t *testing.T) {
	snap := FromDataset(demoDataset()) // five 1986 rows, one 1987 row
	if err := snap.BuildCube(); err != nil {
		t.Fatal(err)
	}

	// A generous window keeps everything and returns the snapshot untouched.
	same, dropped, _, err := Retain(snap, "year", yearsWindow(10))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || same != snap {
		t.Fatalf("wide window dropped %d rows (same=%v)", dropped, same == snap)
	}

	// A window shorter than a year keeps only the newest year's rows.
	next, dropped, horizon, err := Retain(snap, "year", 30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 5 {
		t.Fatalf("dropped = %d, want 5", dropped)
	}
	if next.Version != snap.Version+1 {
		t.Errorf("version = %d, want %d", next.Version, snap.Version+1)
	}
	if next.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", next.NumRows())
	}
	if horizon.IsZero() || !horizon.Before(mustTime(t, "1987")) {
		t.Errorf("horizon = %v", horizon)
	}
	ds, err := next.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Dim("year"); got[0] != "1987" {
		t.Errorf("surviving year = %q, want 1987", got[0])
	}
	if got := ds.Dim("village"); got[0] != "Adishim" {
		t.Errorf("surviving village = %q", got[0])
	}
	// The base carried a cube, so the filtered snapshot rebuilt one.
	if next.Cube() == nil {
		t.Error("retention lost the materialized cube")
	}
	// The base snapshot is untouched.
	if snap.NumRows() != 6 {
		t.Errorf("base mutated: rows = %d", snap.NumRows())
	}
}

func TestRetainKeepsUnparsableValues(t *testing.T) {
	h := []data.Hierarchy{{Name: "time", Attrs: []string{"when"}}}
	d := data.New("feed", []string{"when"}, []string{"v"}, h)
	d.AppendRowVals([]string{"2020-01-01"}, []float64{1})
	d.AppendRowVals([]string{"unknown"}, []float64{2})
	d.AppendRowVals([]string{"2024-01-01"}, []float64{3})
	snap := FromDataset(d)
	next, dropped, _, err := Retain(snap, "when", yearsWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (only the 2020 row)", dropped)
	}
	ds, err := next.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Dim("when"); len(got) != 2 || got[0] != "unknown" || got[1] != "2024-01-01" {
		t.Errorf("survivors = %v", got)
	}
}

func TestRetainHorizonIgnoresOrphanedDictValues(t *testing.T) {
	// After one pass drops the newest rows' predecessors, the dictionary
	// still lists the dropped values; a later horizon must anchor on rows,
	// not dictionary entries.
	h := []data.Hierarchy{{Name: "time", Attrs: []string{"year"}}}
	d := data.New("feed", []string{"year"}, []string{"v"}, h)
	for _, y := range []string{"2019", "2020", "2021"} {
		d.AppendRowVals([]string{y}, []float64{1})
	}
	snap := FromDataset(d)
	next, dropped, _, err := Retain(snap, "year", 400*24*time.Hour)
	if err != nil || dropped != 1 {
		t.Fatalf("first pass: dropped=%d err=%v", dropped, err)
	}
	// The 2019 value survives only in the shared dictionary. Max event time
	// must come from the remaining rows (2021), not re-resurrect 2019.
	max, ok, err := MaxEventTime(next, "year")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if max != mustTime(t, "2021") {
		t.Errorf("max = %v, want 2021", max)
	}
}

func TestRetainErrors(t *testing.T) {
	snap := FromDataset(demoDataset())
	if _, _, _, err := Retain(snap, "nope", yearsWindow(1)); err == nil {
		t.Error("unknown dimension accepted")
	}
	// No parseable values at all: nothing to anchor a horizon on, keep all.
	h := []data.Hierarchy{{Name: "geo", Attrs: []string{"place"}}}
	d := data.New("words", []string{"place"}, []string{"v"}, h)
	d.AppendRowVals([]string{"here"}, []float64{1})
	s2 := FromDataset(d)
	same, dropped, horizon, err := Retain(s2, "place", yearsWindow(1))
	if err != nil || dropped != 0 || same != s2 || !horizon.IsZero() {
		t.Errorf("unparsable-only retention: dropped=%d horizon=%v err=%v", dropped, horizon, err)
	}
}

func mustTime(t *testing.T, v string) time.Time {
	t.Helper()
	tt, ok := ParseEventTime(v)
	if !ok {
		t.Fatalf("cannot parse %q", v)
	}
	return tt
}
