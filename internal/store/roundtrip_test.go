package store

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datasets"
)

// quickstartDataset rebuilds the examples/quickstart survey (same generator,
// same seed).
func quickstartDataset() *data.Dataset {
	rng := rand.New(rand.NewSource(7))
	h := []data.Hierarchy{
		{Name: "geo", Attrs: []string{"district", "village"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	ds := data.New("drought", []string{"district", "village", "year"}, []string{"severity"}, h)
	villages := map[string][]string{
		"Ofla": {"Adishim", "Darube", "Dinka", "Fala", "Zata"},
		"Raya": {"Kukufto", "Mehoni", "Wajirat", "Chercher", "Bala"},
	}
	for _, year := range []string{"1984", "1985", "1986", "1987", "1988"} {
		for _, district := range []string{"Ofla", "Raya"} {
			for _, v := range villages[district] {
				base := 6.0
				if year == "1986" {
					base = 8
				}
				for i := 0; i < 6; i++ {
					sev := base + rng.NormFloat64()
					if v == "Zata" && year == "1986" {
						sev -= 5
					}
					ds.AppendRowVals([]string{district, v, year}, []float64{sev})
				}
			}
		}
	}
	return ds
}

// TestSnapshotRoundTripFidelity asserts, for each dataset the examples/
// programs run on, that a CSV-round-tripped engine (string-keyed paths) and
// a .rst-round-tripped engine (dictionary-coded paths) produce byte-identical
// Recommendation JSON for the example's complaint.
func TestSnapshotRoundTripFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("round-trip fidelity sweep is not short")
	}
	cases := []struct {
		name      string
		ds        *data.Dataset
		groupBy   []string
		complaint core.Complaint
	}{
		{
			name:      "quickstart",
			ds:        quickstartDataset(),
			groupBy:   []string{"district", "year"},
			complaint: core.Complaint{Agg: agg.Std, Measure: "severity", Tuple: data.Predicate{"district": "Ofla", "year": "1986"}, Direction: core.TooHigh},
		},
		{
			name:      "drought",
			ds:        datasets.GenerateFIST(11).DS,
			groupBy:   []string{"region", "year"},
			complaint: core.Complaint{Agg: agg.Mean, Measure: "severity", Tuple: data.Predicate{"region": "Tigray", "year": "y2010"}, Direction: core.TooLow},
		},
		{
			name:      "covid",
			ds:        datasets.GenerateCovidUS(3),
			groupBy:   []string{"day"},
			complaint: core.Complaint{Agg: agg.Sum, Measure: "confirmed", Tuple: data.Predicate{"day": "d070"}, Direction: core.TooLow},
		},
		{
			name:      "vote",
			ds:        datasets.GenerateVote(9).DS,
			groupBy:   []string{"state"},
			complaint: core.Complaint{Agg: agg.Mean, Measure: "pct2020", Tuple: data.Predicate{"state": "Georgia"}, Direction: core.TooLow},
		},
		{
			name:      "absentee",
			ds:        datasets.GenerateAbsentee(5, 3000),
			groupBy:   nil,
			complaint: core.Complaint{Agg: agg.Count, Measure: "one", Tuple: data.Predicate{}, Direction: core.TooHigh},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// CSV round trip: string-backed columns, string-keyed hot paths.
			var csvBuf bytes.Buffer
			if err := tc.ds.WriteCSV(&csvBuf); err != nil {
				t.Fatal(err)
			}
			fromCSV, err := data.ReadCSV(&csvBuf, tc.ds.Name, tc.ds.MeasureNames(), tc.ds.Hierarchies)
			if err != nil {
				t.Fatal(err)
			}
			// .rst round trip: dictionary-coded columns, coded hot paths.
			var rstBuf bytes.Buffer
			if err := FromDataset(tc.ds).Write(&rstBuf); err != nil {
				t.Fatal(err)
			}
			snap, err := Open(bytes.NewReader(rstBuf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			fromRST, err := snap.Dataset()
			if err != nil {
				t.Fatal(err)
			}
			if fromRST.NumRows() != tc.ds.NumRows() || fromCSV.NumRows() != tc.ds.NumRows() {
				t.Fatalf("rows: csv %d rst %d want %d", fromCSV.NumRows(), fromRST.NumRows(), tc.ds.NumRows())
			}

			var recs [][]byte
			for _, ds := range []*data.Dataset{fromCSV, fromRST} {
				eng, err := core.NewEngine(ds, core.Options{EMIterations: 4, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				sess, err := eng.NewSession(tc.groupBy)
				if err != nil {
					t.Fatal(err)
				}
				rec, err := sess.Recommend(tc.complaint)
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(rec)
				if err != nil {
					t.Fatal(err)
				}
				recs = append(recs, b)
			}
			if !bytes.Equal(recs[0], recs[1]) {
				t.Errorf("CSV-loaded and snapshot-loaded recommendations differ:\ncsv: %.400s\nrst: %.400s", recs[0], recs[1])
			}
		})
	}
}
