// The package documentation, including the .rst binary layouts for both
// format versions, lives in doc.go.
package store

import (
	"errors"
	"fmt"

	"repro/internal/cube"
	"repro/internal/data"
)

// Column is one dictionary-encoded dimension: Dict holds the distinct values
// in order of first appearance, Codes holds one index into Dict per row.
type Column struct {
	Name  string
	Dict  []string
	Codes []uint32
}

// MeasureColumn is one numeric measure column.
type MeasureColumn struct {
	Name   string
	Values []float64
}

// Snapshot is one immutable version of a dataset in columnar form. Appending
// rows (Builder.Append) produces a new Snapshot with Version+1; the base
// snapshot and all datasets derived from it stay valid.
type Snapshot struct {
	Name        string
	Version     uint64
	Hierarchies []data.Hierarchy
	Dims        []Column
	Measures    []MeasureColumn

	rows int
	// m is the backing file mapping when the snapshot was opened with
	// OpenMapped: column payloads then live in the mapped file (Codes and
	// Values stay nil) and are decoded lazily through DimReader /
	// MeasureReader. dimOff/msOff are the payload byte offsets from the
	// file's directory.
	m      *mapping
	dimOff []int
	msOff  []int
	// ds memoizes Dataset(): snapshots are immutable, so the derived dataset
	// is built once and shared by every caller.
	ds *data.Dataset
	// cube is the snapshot's materialized rollup lattice, if one was built
	// (BuildCube), loaded from the .rst cube section, or maintained through
	// an append. It is attached to the derived dataset so agg.GroupBy and
	// the factorizer consult it transparently.
	cube *cube.Cube
}

// NumRows returns the snapshot's row count.
func (s *Snapshot) NumRows() int { return s.rows }

// FromDataset dictionary-encodes a dataset into a version-1 snapshot.
// Dictionaries list values in order of first appearance, so encoding is
// deterministic for a given row order.
func FromDataset(ds *data.Dataset) *Snapshot {
	s := &Snapshot{
		Name:        ds.Name,
		Version:     1,
		Hierarchies: append([]data.Hierarchy(nil), ds.Hierarchies...),
		rows:        ds.NumRows(),
	}
	for _, name := range ds.DimNames() {
		s.Dims = append(s.Dims, encodeColumn(ds, name))
	}
	for _, name := range ds.MeasureNames() {
		s.Measures = append(s.Measures, MeasureColumn{
			Name:   name,
			Values: append([]float64(nil), ds.Measure(name)...),
		})
	}
	return s
}

// NewSnapshot assembles a snapshot from already-encoded columns and validates
// it (column lengths, code ranges, hierarchy functional dependencies). It is
// the constructor internal/shard uses to build per-shard snapshots that share
// dictionaries with their siblings; the caller keeps ownership conventions —
// columns must not be mutated afterwards.
func NewSnapshot(name string, version uint64, hierarchies []data.Hierarchy, dims []Column, measures []MeasureColumn, rows int) (*Snapshot, error) {
	s := &Snapshot{
		Name:        name,
		Version:     version,
		Hierarchies: hierarchies,
		Dims:        dims,
		Measures:    measures,
		rows:        rows,
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// AttachCube installs a pre-built materialized cube on the snapshot (and on
// the already-derived dataset, if any). The cube must aggregate exactly this
// snapshot's rows; internal/shard uses this to carry per-shard cubes across
// appends (delta-merge) instead of rebuilding them. Attach before handing the
// snapshot to concurrent readers.
func (s *Snapshot) AttachCube(c *cube.Cube) { s.attachCube(c) }

// encodeColumn dictionary-encodes one dimension, reusing the dataset's own
// encoding when it already carries one.
func encodeColumn(ds *data.Dataset, name string) Column {
	if dict, codes, ok := ds.DimCodes(name); ok {
		return Column{Name: name, Dict: dict, Codes: codes}
	}
	col := ds.Dim(name)
	idx := make(map[string]uint32)
	var dict []string
	codes := make([]uint32, len(col))
	for i, v := range col {
		c, ok := idx[v]
		if !ok {
			c = uint32(len(dict))
			idx[v] = c
			dict = append(dict, v)
		}
		codes[i] = c
	}
	return Column{Name: name, Dict: dict, Codes: codes}
}

// Dataset materializes the snapshot as a code-backed data.Dataset. The
// result is memoized and shared: callers must treat it as immutable, like
// every engine-owned dataset.
//
// An eager snapshot installs its dictionary encodings as slice columns
// (data.SetEncodedDim); a mapped one installs lazily-decoded column readers
// (data.SetDimCursor / SetMeasureCursor), so the dataset's row data stays in
// the file and consumers stream over the cursor seam.
func (s *Snapshot) Dataset() (*data.Dataset, error) {
	if s.ds != nil {
		return s.ds, nil
	}
	dimNames := make([]string, len(s.Dims))
	for i, c := range s.Dims {
		dimNames[i] = c.Name
	}
	msNames := make([]string, len(s.Measures))
	for i, m := range s.Measures {
		msNames[i] = m.Name
	}
	ds := data.New(s.Name, dimNames, msNames, append([]data.Hierarchy(nil), s.Hierarchies...))
	for i, c := range s.Dims {
		if c.Codes == nil && s.m != nil {
			if err := ds.SetDimCursor(c.Name, s.DimReader(i)); err != nil {
				return nil, err
			}
			continue
		}
		if len(c.Codes) != s.rows {
			return nil, fmt.Errorf("store: dimension %q has %d rows, snapshot has %d", c.Name, len(c.Codes), s.rows)
		}
		if err := ds.SetEncodedDim(c.Name, c.Dict, c.Codes); err != nil {
			return nil, err
		}
	}
	for i, m := range s.Measures {
		if m.Values == nil && s.m != nil {
			if err := ds.SetMeasureCursor(m.Name, s.MeasureReader(i)); err != nil {
				return nil, err
			}
			continue
		}
		if len(m.Values) != s.rows {
			return nil, fmt.Errorf("store: measure %q has %d rows, snapshot has %d", m.Name, len(m.Values), s.rows)
		}
		if err := ds.SetMeasure(m.Name, m.Values); err != nil {
			return nil, err
		}
	}
	if s.cube != nil {
		ds.SetRollup(s.cube)
	}
	s.ds = ds
	return ds, nil
}

// Cube returns the snapshot's materialized rollup lattice, or nil.
func (s *Snapshot) Cube() *cube.Cube { return s.cube }

// BuildCube materializes the snapshot's rollup lattice and attaches it to
// the derived dataset, so group-bys over hierarchy prefixes are answered
// from precomputed cells. It is a no-op when a cube is already present, and
// silently skips datasets the cube subsystem declines (no hierarchies, key
// space too wide): callers check Cube() for presence and serving falls back
// to row scans.
func (s *Snapshot) BuildCube() error {
	if s.cube != nil || len(s.Hierarchies) == 0 {
		return nil
	}
	ds, err := s.Dataset()
	if err != nil {
		return err
	}
	c, err := cube.Build(ds)
	if errors.Is(err, cube.ErrNotCubable) {
		return nil
	}
	if err != nil {
		return err
	}
	s.attachCube(c)
	return nil
}

// attachCube installs a cube on the snapshot and on the already-derived
// dataset, if any. Snapshots are shared immutably once published, so callers
// attach before handing the snapshot to concurrent readers.
func (s *Snapshot) attachCube(c *cube.Cube) {
	s.cube = c
	if s.ds != nil {
		s.ds.SetRollup(c)
	}
}

// dim returns the column with the given name, or nil.
func (s *Snapshot) dim(name string) *Column {
	for i := range s.Dims {
		if s.Dims[i].Name == name {
			return &s.Dims[i]
		}
	}
	return nil
}

// validate checks the snapshot's structural invariants (column lengths, code
// ranges, hierarchy attributes) and, via the derived dataset, the hierarchy
// functional dependencies. It is run on every Open and Append.
func (s *Snapshot) validate() error {
	for ci := range s.Dims {
		c := &s.Dims[ci]
		mapped := c.Codes == nil && s.m != nil
		if !mapped && len(c.Codes) != s.rows {
			return fmt.Errorf("store: dimension %q has %d rows, snapshot has %d", c.Name, len(c.Codes), s.rows)
		}
		// Dictionary values must be distinct: duplicates would make the coded
		// group-by split what the string semantics merge, so a checksum-valid
		// but hand-crafted file cannot smuggle the inconsistency in.
		seen := make(map[string]struct{}, len(c.Dict))
		for _, v := range c.Dict {
			if _, dup := seen[v]; dup {
				return fmt.Errorf("store: dimension %q: duplicate dictionary value %q", c.Name, v)
			}
			seen[v] = struct{}{}
		}
		if mapped {
			// One streaming pass over the mapped payload: O(rows) time,
			// O(1) heap — mapped open keeps the same corruption guarantees
			// as eager open.
			r := s.DimReader(ci)
			for i := 0; i < s.rows; i++ {
				if code := r.Code(i); int(code) >= len(c.Dict) {
					return fmt.Errorf("store: dimension %q row %d: code %d out of range (dictionary size %d)",
						c.Name, i, code, len(c.Dict))
				}
			}
			continue
		}
		for i, code := range c.Codes {
			if int(code) >= len(c.Dict) {
				return fmt.Errorf("store: dimension %q row %d: code %d out of range (dictionary size %d)",
					c.Name, i, code, len(c.Dict))
			}
		}
	}
	for mi := range s.Measures {
		m := &s.Measures[mi]
		if m.Values == nil && s.m != nil {
			continue // payload length is fixed by the offset directory
		}
		if len(m.Values) != s.rows {
			return fmt.Errorf("store: measure %q has %d rows, snapshot has %d", m.Name, len(m.Values), s.rows)
		}
	}
	if len(s.Hierarchies) == 0 {
		return nil // auxiliary tables carry no hierarchy metadata
	}
	ds, err := s.Dataset()
	if err != nil {
		return err
	}
	if err := ds.Validate(); err != nil {
		return fmt.Errorf("store: snapshot %q: %w", s.Name, err)
	}
	return nil
}
