package store

import (
	"bytes"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/data"
)

func crcOf(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// demoDataset builds the paper's running example: a geo hierarchy
// (district → village) and a year hierarchy over a severity measure.
func demoDataset() *data.Dataset {
	h := []data.Hierarchy{
		{Name: "geo", Attrs: []string{"district", "village"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	d := data.New("drought", []string{"district", "village", "year"}, []string{"severity"}, h)
	rows := []struct {
		dist, vil, yr string
		sev           float64
	}{
		{"Ofla", "Adishim", "1986", 8},
		{"Ofla", "Adishim", "1986", 9},
		{"Ofla", "Darube", "1986", 2},
		{"Ofla", "Zata", "1986", 1},
		{"Ofla", "Adishim", "1987", 7},
		{"Raya", "Kukufto", "1986", 6},
	}
	for _, r := range rows {
		d.AppendRowVals([]string{r.dist, r.vil, r.yr}, []float64{r.sev})
	}
	return d
}

// assertDatasetsEqual compares every column of two datasets value by value.
func assertDatasetsEqual(t *testing.T, got, want *data.Dataset) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), want.NumRows())
	}
	if !reflect.DeepEqual(got.DimNames(), want.DimNames()) {
		t.Fatalf("dims = %v, want %v", got.DimNames(), want.DimNames())
	}
	if !reflect.DeepEqual(got.MeasureNames(), want.MeasureNames()) {
		t.Fatalf("measures = %v, want %v", got.MeasureNames(), want.MeasureNames())
	}
	if !reflect.DeepEqual(got.Hierarchies, want.Hierarchies) {
		t.Fatalf("hierarchies = %+v, want %+v", got.Hierarchies, want.Hierarchies)
	}
	for _, c := range want.DimNames() {
		if !reflect.DeepEqual(got.Dim(c), want.Dim(c)) {
			t.Errorf("dimension %q differs:\n got %v\nwant %v", c, got.Dim(c), want.Dim(c))
		}
	}
	for _, c := range want.MeasureNames() {
		if !reflect.DeepEqual(got.Measure(c), want.Measure(c)) {
			t.Errorf("measure %q differs:\n got %v\nwant %v", c, got.Measure(c), want.Measure(c))
		}
	}
}

func TestFromDatasetRoundTrip(t *testing.T) {
	ds := demoDataset()
	snap := FromDataset(ds)
	if snap.Version != 1 || snap.NumRows() != ds.NumRows() {
		t.Fatalf("version %d rows %d", snap.Version, snap.NumRows())
	}
	back, err := snap.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, back, ds)
	// The round-tripped dataset is code-backed.
	for _, c := range back.DimNames() {
		if _, _, ok := back.DimCodes(c); !ok {
			t.Errorf("dimension %q lost its dictionary encoding", c)
		}
	}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	ds := demoDataset()
	snap := FromDataset(ds)
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Open(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "drought" || got.Version != 1 || got.NumRows() != 6 {
		t.Fatalf("decoded header: name=%q version=%d rows=%d", got.Name, got.Version, got.NumRows())
	}
	back, err := got.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, back, ds)
}

func TestWriteFileOpenFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drought.rst")
	snap := FromDataset(demoDataset())
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := got.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, back, demoDataset())
}

func TestOpenRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := FromDataset(demoDataset()).Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bit flip", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)/2] ^= 0x40
		if _, err := Open(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("err = %v, want checksum mismatch", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := Open(bytes.NewReader(good[:len(good)-9])); err == nil {
			t.Fatal("expected error for truncated snapshot")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("NOTASNAP"), good[8:]...)
		if _, err := Open(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "checksum") {
			// The checksum catches the damage before the magic check runs.
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Open(bytes.NewReader(nil)); err == nil {
			t.Fatal("expected error for empty input")
		}
	})
}

func TestOpenRejectsFutureFormatVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := FromDataset(demoDataset()).Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[7] = FormatVersion + 1
	// Re-seal the checksum so the version check (not the checksum) fires.
	reseal(b)
	if _, err := Open(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("err = %v, want format version error", err)
	}
}

func TestOpenRejectsDuplicateDictValues(t *testing.T) {
	// A duplicate dictionary value would make the coded group-by split what
	// the string semantics merge; a checksum-valid file must not smuggle it.
	snap := FromDataset(demoDataset())
	snap.Dims[0].Dict[1] = snap.Dims[0].Dict[0]
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "duplicate dictionary value") {
		t.Fatalf("err = %v, want duplicate dictionary value", err)
	}
}

func TestOpenValidatesHierarchies(t *testing.T) {
	// Hand-build a snapshot whose hierarchy references a missing attribute.
	snap := FromDataset(demoDataset())
	snap.Hierarchies = append(snap.Hierarchies, data.Hierarchy{Name: "bogus", Attrs: []string{"nope"}})
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "unknown attribute") {
		t.Fatalf("err = %v, want unknown attribute", err)
	}
}

func TestBuilderAppend(t *testing.T) {
	base := FromDataset(demoDataset())
	baseDS, err := base.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	baseRows := base.NumRows()
	b := NewBuilder(base)
	next, err := b.Append([]Row{
		{Dims: []string{"Raya", "Mehoni", "1987"}, Measures: []float64{5.5}}, // new village
		{Dims: []string{"Ofla", "Zata", "1986"}, Measures: []float64{3}},     // existing values
	})
	if err != nil {
		t.Fatal(err)
	}
	if next.Version != base.Version+1 {
		t.Errorf("version = %d, want %d", next.Version, base.Version+1)
	}
	if next.NumRows() != baseRows+2 {
		t.Errorf("rows = %d, want %d", next.NumRows(), baseRows+2)
	}
	// Base snapshot and its dataset are untouched.
	if base.NumRows() != baseRows || baseDS.NumRows() != baseRows {
		t.Fatalf("append mutated the base snapshot")
	}
	if got := base.dim("village").Dict; len(got) != 4 {
		t.Errorf("base village dict grew: %v", got)
	}
	nds, err := next.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if got := nds.Dim("village")[baseRows]; got != "Mehoni" {
		t.Errorf("appended village = %q", got)
	}
	if got := nds.Measure("severity")[baseRows+1]; got != 3 {
		t.Errorf("appended severity = %v", got)
	}
	// The new value extended the dictionary.
	dict, _, _ := nds.DimCodes("village")
	if dict[len(dict)-1] != "Mehoni" {
		t.Errorf("village dict = %v, want Mehoni last", dict)
	}

	// Appending again builds on the new version.
	third, err := b.Append([]Row{{Dims: []string{"Raya", "Mehoni", "1987"}, Measures: []float64{6}}})
	if err != nil {
		t.Fatal(err)
	}
	if third.Version != 3 || third.NumRows() != baseRows+3 {
		t.Errorf("third version %d rows %d", third.Version, third.NumRows())
	}
}

func TestBuilderAppendRejectsBadRows(t *testing.T) {
	b := NewBuilder(FromDataset(demoDataset()))
	if _, err := b.Append([]Row{{Dims: []string{"Ofla"}, Measures: []float64{1}}}); err == nil {
		t.Error("expected arity error")
	}
	if _, err := b.Append([]Row{{Dims: []string{"Ofla", "Adishim", "1986"}, Measures: []float64{0}}}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	// Zata already belongs to Ofla: claiming it for Raya violates the
	// village → district FD and must leave the lineage unchanged.
	before := b.Snapshot()
	if _, err := b.Append([]Row{{Dims: []string{"Raya", "Zata", "1986"}, Measures: []float64{1}}}); err == nil || !strings.Contains(err.Error(), "FD violation") {
		t.Fatalf("err = %v, want FD violation", err)
	}
	if b.Snapshot() != before {
		t.Error("failed append advanced the builder")
	}
	if _, err := b.Append([]Row{{Dims: []string{"Ofla", "Adishim", "1986"}, Measures: []float64{1}}}); err != nil {
		t.Errorf("append after failed batch: %v", err)
	}
}

func TestBuilderAppendVersionedWriteRoundTrip(t *testing.T) {
	b := NewBuilder(FromDataset(demoDataset()))
	next, err := b.Append([]Row{{Dims: []string{"Raya", "Bala", "1988"}, Measures: []float64{4}}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := next.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Open(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 {
		t.Errorf("persisted version = %d, want 2", got.Version)
	}
	wantDS, err := next.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	gotDS, err := got.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, gotDS, wantDS)
}

// reseal recomputes the trailing checksum after a deliberate payload edit.
func reseal(b []byte) {
	sum := crcOf(b[:len(b)-4])
	b[len(b)-4] = byte(sum)
	b[len(b)-3] = byte(sum >> 8)
	b[len(b)-2] = byte(sum >> 16)
	b[len(b)-1] = byte(sum >> 24)
}
