// Package synth generates the synthetic workloads of §5.2: one-dimension
// grouped datasets with controlled group-wise errors (missing records,
// duplicates, systematic value drift and their combinations), plus
// Iman–Conover rank-correlated auxiliary tables.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/agg"
	"repro/internal/data"
	"repro/internal/mat"
)

// Config parameterizes dataset generation. Zero values select the paper's
// defaults (§5.2.1): 100 groups, row counts ~ N(100, 20), measure values
// ~ N(100, 20).
type Config struct {
	Groups   int
	RowsMean float64
	RowsStd  float64
	ValMean  float64
	ValStd   float64
}

func (c Config) withDefaults() Config {
	if c.Groups <= 0 {
		c.Groups = 100
	}
	if c.RowsMean == 0 {
		c.RowsMean = 100
	}
	if c.RowsStd == 0 {
		c.RowsStd = 20
	}
	if c.ValMean == 0 {
		c.ValMean = 100
	}
	if c.ValStd == 0 {
		c.ValStd = 20
	}
	return c
}

// Dataset is one generated synthetic dataset: a single dimension attribute
// "grp" (one hierarchy) and a measure "val".
type Dataset struct {
	DS     *data.Dataset
	Groups []string
}

// Generate builds a clean dataset.
func Generate(cfg Config, rng *rand.Rand) *Dataset {
	cfg = cfg.withDefaults()
	h := []data.Hierarchy{{Name: "dim", Attrs: []string{"grp"}}}
	ds := data.New("synthetic", []string{"grp"}, []string{"val"}, h)
	out := &Dataset{DS: ds}
	for g := 0; g < cfg.Groups; g++ {
		name := fmt.Sprintf("g%03d", g)
		out.Groups = append(out.Groups, name)
		n := int(cfg.RowsMean + rng.NormFloat64()*cfg.RowsStd)
		if n < 2 {
			n = 2
		}
		for r := 0; r < n; r++ {
			ds.AppendRowVals([]string{name}, []float64{cfg.ValMean + rng.NormFloat64()*cfg.ValStd})
		}
	}
	return out
}

// ErrorType enumerates the §5.2.1 error classes.
type ErrorType int

const (
	// Missing deletes half of the group's rows.
	Missing ErrorType = iota
	// Dup duplicates half of the group's rows.
	Dup
	// DriftUp increases every measure value in the group by 5.
	DriftUp
	// DriftDown decreases every measure value in the group by 5.
	DriftDown
	// MissingDriftDown combines Missing and DriftDown.
	MissingDriftDown
	// DupDriftUp combines Dup and DriftUp.
	DupDriftUp
)

func (e ErrorType) String() string {
	switch e {
	case Missing:
		return "Missing"
	case Dup:
		return "Dup"
	case DriftUp:
		return "Increase"
	case DriftDown:
		return "Decrease"
	case MissingDriftDown:
		return "Missing+Decrease"
	case DupDriftUp:
		return "Dup+Increase"
	}
	return fmt.Sprintf("ErrorType(%d)", int(e))
}

// DriftDelta is the systematic value error magnitude (§5.2.1).
const DriftDelta = 5.0

// Inject corrupts one group in place and returns the corrupted dataset (the
// input is not modified). Deletion/duplication picks the group's first half
// deterministically; drift shifts every value in the group.
func (d *Dataset) Inject(group string, et ErrorType) *Dataset {
	ds := d.DS
	grp := ds.Dim("grp")
	var groupRows []int
	for i := 0; i < ds.NumRows(); i++ {
		if grp[i] == group {
			groupRows = append(groupRows, i)
		}
	}
	half := len(groupRows) / 2

	var idx []int
	switch et {
	case Missing, MissingDriftDown:
		drop := make(map[int]bool, half)
		for _, r := range groupRows[:half] {
			drop[r] = true
		}
		for i := 0; i < ds.NumRows(); i++ {
			if !drop[i] {
				idx = append(idx, i)
			}
		}
	case Dup, DupDriftUp:
		for i := 0; i < ds.NumRows(); i++ {
			idx = append(idx, i)
		}
		idx = append(idx, groupRows[:half]...)
	default:
		for i := 0; i < ds.NumRows(); i++ {
			idx = append(idx, i)
		}
	}
	out := ds.Select(idx)
	switch et {
	case DriftUp, DupDriftUp:
		shiftGroup(out, group, DriftDelta)
	case DriftDown, MissingDriftDown:
		shiftGroup(out, group, -DriftDelta)
	}
	return &Dataset{DS: out, Groups: d.Groups}
}

func shiftGroup(ds *data.Dataset, group string, delta float64) {
	grp := ds.Dim("grp")
	vals := ds.Measure("val")
	for i := range vals {
		if grp[i] == group {
			vals[i] += delta
		}
	}
}

// GroupStat returns the per-group value of one aggregate, aligned with the
// given group order.
func (d *Dataset) GroupStat(f agg.Func, order []string) []float64 {
	groups := agg.GroupBy(d.DS, []string{"grp"}, "val")
	out := make([]float64, len(order))
	for i, name := range order {
		if g, ok := groups.Get([]string{name}); ok {
			out[i] = g.Stats.Get(f)
		}
	}
	return out
}

// CorrelatedAux builds an auxiliary table whose measure has (approximately)
// the requested rank correlation rho with the given per-group statistic,
// using the distribution-free reordering approach of Iman and Conover [23]:
// a target score ρ·z(stat) + √(1−ρ²)·ε is formed, an independent normal
// sample is drawn as the auxiliary marginal, and the sample is reordered so
// its ranks match the target's ranks.
func CorrelatedAux(groups []string, stat []float64, rho float64, rng *rand.Rand) *data.Dataset {
	n := len(groups)
	target := mat.Standardize(stat)
	noiseScale := math.Sqrt(math.Max(0, 1-rho*rho))
	for i := range target {
		target[i] = rho*target[i] + noiseScale*rng.NormFloat64()
	}
	// Marginal sample, sorted.
	marginal := make([]float64, n)
	for i := range marginal {
		marginal[i] = 100 + 20*rng.NormFloat64()
	}
	sort.Float64s(marginal)
	// Rank of each target value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return target[idx[a]] < target[idx[b]] })
	aux := make([]float64, n)
	for rank, i := range idx {
		aux[i] = marginal[rank]
	}
	out := data.New("aux", []string{"grp"}, []string{"auxval"}, nil)
	for i, g := range groups {
		out.AppendRowVals([]string{g}, []float64{aux[i]})
	}
	return out
}
