package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/mat"
)

func TestGenerateShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Generate(Config{Groups: 20}, rng)
	if len(d.Groups) != 20 {
		t.Fatalf("groups = %d", len(d.Groups))
	}
	groups := agg.GroupBy(d.DS, []string{"grp"}, "val")
	if len(groups.Groups) != 20 {
		t.Fatalf("observed groups = %d", len(groups.Groups))
	}
	// Group sizes near 100, values near 100.
	var sizes, means []float64
	for _, g := range groups.Groups {
		sizes = append(sizes, g.Stats.Count)
		means = append(means, g.Stats.Mean())
	}
	if m := mat.Mean(sizes); m < 80 || m > 120 {
		t.Errorf("mean group size = %v", m)
	}
	if m := mat.Mean(means); m < 90 || m > 110 {
		t.Errorf("mean value = %v", m)
	}
}

func TestInjectMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Generate(Config{Groups: 10}, rng)
	before := d.GroupStat(agg.Count, d.Groups)
	corrupted := d.Inject(d.Groups[3], Missing)
	after := corrupted.GroupStat(agg.Count, d.Groups)
	for i := range d.Groups {
		if i == 3 {
			if math.Abs(after[i]-before[i]/2) > 1 {
				t.Errorf("missing group count = %v, want ≈%v", after[i], before[i]/2)
			}
		} else if after[i] != before[i] {
			t.Errorf("group %d count changed: %v → %v", i, before[i], after[i])
		}
	}
}

func TestInjectDup(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := Generate(Config{Groups: 10}, rng)
	before := d.GroupStat(agg.Count, d.Groups)
	after := d.Inject(d.Groups[5], Dup).GroupStat(agg.Count, d.Groups)
	if math.Abs(after[5]-before[5]*1.5) > 1 {
		t.Errorf("dup group count = %v, want ≈%v", after[5], before[5]*1.5)
	}
}

func TestInjectDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := Generate(Config{Groups: 10}, rng)
	before := d.GroupStat(agg.Mean, d.Groups)
	up := d.Inject(d.Groups[0], DriftUp).GroupStat(agg.Mean, d.Groups)
	if math.Abs(up[0]-(before[0]+DriftDelta)) > 1e-9 {
		t.Errorf("drift up mean = %v, want %v", up[0], before[0]+DriftDelta)
	}
	down := d.Inject(d.Groups[0], DriftDown).GroupStat(agg.Mean, d.Groups)
	if math.Abs(down[0]-(before[0]-DriftDelta)) > 1e-9 {
		t.Errorf("drift down mean = %v", down[0])
	}
}

func TestInjectCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := Generate(Config{Groups: 10}, rng)
	beforeCount := d.GroupStat(agg.Count, d.Groups)
	beforeMean := d.GroupStat(agg.Mean, d.Groups)
	c := d.Inject(d.Groups[2], MissingDriftDown)
	if got := c.GroupStat(agg.Count, d.Groups)[2]; math.Abs(got-beforeCount[2]/2) > 1 {
		t.Errorf("combo count = %v", got)
	}
	// The drift applies to the surviving rows; the mean shifts by ≈ −5
	// (up to which half was deleted).
	if got := c.GroupStat(agg.Mean, d.Groups)[2]; math.Abs(got-(beforeMean[2]-DriftDelta)) > 3 {
		t.Errorf("combo mean = %v, want ≈%v", got, beforeMean[2]-DriftDelta)
	}
	c2 := d.Inject(d.Groups[2], DupDriftUp)
	if got := c2.GroupStat(agg.Count, d.Groups)[2]; math.Abs(got-beforeCount[2]*1.5) > 1 {
		t.Errorf("dup combo count = %v", got)
	}
}

func TestInjectDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := Generate(Config{Groups: 5}, rng)
	before := d.GroupStat(agg.Mean, d.Groups)
	_ = d.Inject(d.Groups[0], DriftUp)
	after := d.GroupStat(agg.Mean, d.Groups)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Inject modified its input")
		}
	}
}

func TestErrorTypeStrings(t *testing.T) {
	for _, e := range []ErrorType{Missing, Dup, DriftUp, DriftDown, MissingDriftDown, DupDriftUp} {
		if e.String() == "" {
			t.Error("empty ErrorType string")
		}
	}
	if ErrorType(99).String() == "" {
		t.Error("unknown ErrorType should render")
	}
}

// Iman–Conover: the achieved rank correlation must track the requested one.
func TestCorrelatedAuxHitsTargetRho(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := Generate(Config{Groups: 200}, rng)
	stat := d.GroupStat(agg.Mean, d.Groups)
	for _, rho := range []float64{0.6, 0.8, 1.0} {
		var achieved []float64
		for rep := 0; rep < 10; rep++ {
			aux := CorrelatedAux(d.Groups, stat, rho, rng)
			vals := aux.Measure("auxval")
			achieved = append(achieved, mat.SpearmanCorr(stat, vals))
		}
		m := mat.Mean(achieved)
		if math.Abs(m-rho) > 0.08 {
			t.Errorf("rho %v: achieved %v", rho, m)
		}
	}
}

func TestCorrelatedAuxPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	stat := []float64{5, 1, 3, 2, 4}
	aux := CorrelatedAux([]string{"a", "b", "c", "d", "e"}, stat, 1.0, rng)
	vals := aux.Measure("auxval")
	if got := mat.SpearmanCorr(stat, vals); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect rho gives Spearman %v", got)
	}
}
