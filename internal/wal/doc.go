// Package wal implements the per-dataset write-ahead log that gives row
// ingestion durability between snapshot versions. A server acknowledging an
// append before folding it into a snapshot first commits the batch here:
// every Append writes one framed record and fsyncs before returning, so an
// acknowledged batch survives a crash and is replayed on the next Open.
//
// # On-disk layout
//
// A log file is a 13-byte header followed by zero or more frames, all
// little-endian:
//
//	header:
//	  magic     4 bytes  "RWAL"
//	  version   1 byte   currently 1
//	  startSeq  8 bytes  uint64; sequence numbering resumes at
//	                     max(startSeq, last frame seq + 1)
//
//	frame (one committed batch):
//	  length    4 bytes  uint32, byte length of seq + payload
//	  seq       8 bytes  uint64, strictly increasing across the file
//	  payload   length−8 bytes (see below)
//	  crc       4 bytes  CRC-32C (Castagnoli) over length, seq and payload
//
//	payload (one row batch):
//	  nRows     uvarint
//	  nDims     uvarint
//	  nMeasures uvarint
//	  per row, in order:
//	    nDims × (uvarint byte length, raw value bytes)
//	    nMeasures × 8-byte IEEE-754 float64 bits
//
// The CRC covers the frame's own length and sequence fields, so a frame whose
// length bytes were themselves corrupted cannot smuggle a bogus payload past
// the check.
//
// # Recovery semantics
//
// Open scans the file front to back and returns every intact batch. The scan
// stops at the first frame that is torn (the file ends inside it — the
// classic crash-mid-write tail), fails its CRC, decodes inconsistently, or
// breaks the strictly-increasing sequence order; the file is truncated back
// to the end of the last intact frame, because nothing after a broken frame
// can be trusted. A missing file is created empty. Both outcomes leave the
// log ready for new Appends.
//
// Reset atomically replaces the log with an empty one whose header carries
// the next sequence number, so numbering never repeats across truncations.
// Callers Reset after the logged batches are durably captured elsewhere
// (e.g. a checkpoint snapshot written by internal/server); the checkpoint
// records the last sequence it folded in, and recovery skips replayed frames
// at or below it.
package wal
