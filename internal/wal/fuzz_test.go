package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// FuzzWALReplay writes arbitrary bytes as a log file and opens it. The
// recovery contract: Open either replays cleanly or reports an error — a
// torn, bit-flipped, or outright garbage log must never panic, and whatever
// tail truncation it performs must leave a file Open accepts on a second
// pass (recovery is idempotent). Seeds cover a healthy two-batch log, its
// torn prefixes, a bare header, and non-WAL bytes.
func FuzzWALReplay(f *testing.F) {
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.wal")
	w, _, err := Open(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	rows := []store.Row{
		{Dims: []string{"Ofla", "Adishim", "1986"}, Measures: []float64{8}},
		{Dims: []string{"Raya", "Kukufto", "1986"}, Measures: []float64{6}},
	}
	if _, err := w.Append(rows[:1]); err != nil {
		f.Fatal(err)
	}
	if _, err := w.Append(rows); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	healthy, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3]) // torn tail
	f.Add(healthy[:13])             // header only
	f.Add([]byte("RWAL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		w, batches, err := Open(path)
		if err != nil {
			return
		}
		if err := w.Close(); err != nil {
			t.Fatalf("closing recovered log: %v", err)
		}
		// Recovery must be idempotent: the truncated file reopens cleanly
		// with the same committed batches.
		w2, batches2, err := Open(path)
		if err != nil {
			t.Fatalf("reopening recovered log: %v", err)
		}
		if len(batches2) != len(batches) {
			t.Fatalf("recovery not idempotent: %d batches then %d", len(batches), len(batches2))
		}
		w2.Close()
	})
}
