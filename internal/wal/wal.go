// The package documentation, including the on-disk frame layout, lives in
// doc.go.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/store"
)

const (
	magic      = "RWAL"
	version    = 1
	headerSize = 4 + 1 + 8
	// frameOverhead is the fixed byte cost around a payload: length, seq, crc.
	frameOverhead = 4 + 8 + 4
	// maxFrameLen bounds a single frame's seq+payload bytes; anything larger
	// in a length field is treated as corruption, not an allocation request.
	maxFrameLen = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Batch is one committed append: the sequence number the caller was
// acknowledged with and the rows it covers.
type Batch struct {
	Seq  uint64
	Rows []store.Row
}

// WAL is one dataset's write-ahead log. It is not safe for concurrent use;
// callers serialize access per dataset (internal/server holds its ingester
// mutex around every call).
type WAL struct {
	path   string
	f      *os.File
	seq    uint64 // last assigned sequence number
	size   int64
	frames int // committed frames currently in the file
}

// Open opens (or creates) the log at path and scans its committed batches.
// A torn or corrupt tail is truncated away — see the package documentation
// for the exact recovery semantics. The returned batches are every intact
// frame in commit order; the caller decides which still need replaying.
func Open(path string) (*WAL, []Batch, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	w := &WAL{path: path, f: f}
	batches, err := w.scan()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, batches, nil
}

// scan reads the header and every intact frame, truncating the file back to
// the last intact frame when it hits a torn or corrupt one.
func (w *WAL) scan() ([]Batch, error) {
	info, err := w.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("wal: stat %s: %w", w.path, err)
	}
	if info.Size() == 0 {
		// Fresh log: write the header with sequence numbering from 1.
		if err := w.writeHeader(w.f, 1); err != nil {
			return nil, err
		}
		w.size = headerSize
		return nil, nil
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(w.f, hdr[:]); err != nil {
		return nil, fmt.Errorf("wal: %s: reading header: %w", w.path, err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("wal: %s is not a write-ahead log (bad magic)", w.path)
	}
	if hdr[4] != version {
		return nil, fmt.Errorf("wal: %s: unsupported log version %d (want %d)", w.path, hdr[4], version)
	}
	startSeq := binary.LittleEndian.Uint64(hdr[5:])
	if startSeq > 0 {
		w.seq = startSeq - 1
	}

	var batches []Batch
	off := int64(headerSize)
	for {
		b, end, err := readFrame(w.f, off, w.seq)
		if err != nil {
			if errors.Is(err, errFrameBroken) {
				// Crash tail (or damage): drop this frame and everything
				// after it.
				if terr := w.f.Truncate(off); terr != nil {
					return nil, fmt.Errorf("wal: %s: truncating torn tail at %d: %w", w.path, off, terr)
				}
				break
			}
			return nil, err
		}
		if b == nil { // clean EOF
			break
		}
		batches = append(batches, *b)
		w.seq = b.Seq
		w.frames++
		off = end
	}
	w.size = off
	if _, err := w.f.Seek(off, io.SeekStart); err != nil {
		return nil, fmt.Errorf("wal: %s: seeking to tail: %w", w.path, err)
	}
	return batches, nil
}

// errFrameBroken marks a frame that recovery must truncate at (torn tail,
// CRC mismatch, inconsistent payload, sequence regression) — as opposed to
// an I/O error, which fails the open.
var errFrameBroken = errors.New("wal: broken frame")

// readFrame decodes one frame starting at off. It returns (nil, off, nil) on
// a clean end of file, errFrameBroken for anything recovery should truncate,
// and other errors for real I/O failures.
func readFrame(f *os.File, off int64, prevSeq uint64) (*Batch, int64, error) {
	var lenBuf [4]byte
	n, err := f.ReadAt(lenBuf[:], off)
	if n == 0 && (err == io.EOF || err == nil) {
		return nil, off, nil
	}
	if n < len(lenBuf) {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, off, errFrameBroken
		}
		return nil, off, fmt.Errorf("wal: reading frame length at %d: %w", off, err)
	}
	frameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if frameLen < 8 || frameLen > maxFrameLen {
		return nil, off, errFrameBroken
	}
	rest := make([]byte, int(frameLen)+4) // seq+payload plus trailing crc
	if _, err := io.ReadFull(io.NewSectionReader(f, off+4, int64(len(rest))), rest); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, off, errFrameBroken
		}
		return nil, off, fmt.Errorf("wal: reading frame at %d: %w", off, err)
	}
	body, sum := rest[:frameLen], rest[frameLen:]
	crc := crc32.Checksum(lenBuf[:], castagnoli)
	crc = crc32.Update(crc, castagnoli, body)
	if crc != binary.LittleEndian.Uint32(sum) {
		return nil, off, errFrameBroken
	}
	seq := binary.LittleEndian.Uint64(body[:8])
	if seq <= prevSeq {
		return nil, off, errFrameBroken
	}
	rows, ok := decodeBatch(body[8:])
	if !ok {
		return nil, off, errFrameBroken
	}
	return &Batch{Seq: seq, Rows: rows}, off + 4 + int64(frameLen) + 4, nil
}

// Append commits one row batch: it frames and writes the rows, fsyncs, and
// returns the batch's sequence number. The rows are durable when Append
// returns.
func (w *WAL) Append(rows []store.Row) (uint64, error) {
	if len(rows) == 0 {
		return 0, fmt.Errorf("wal: empty batch")
	}
	payload := encodeBatch(rows)
	seq := w.seq + 1
	frame := make([]byte, 4+8+len(payload)+4)
	binary.LittleEndian.PutUint32(frame[:4], uint32(8+len(payload)))
	binary.LittleEndian.PutUint64(frame[4:12], seq)
	copy(frame[12:], payload)
	crc := crc32.Checksum(frame[:12+len(payload)], castagnoli)
	binary.LittleEndian.PutUint32(frame[12+len(payload):], crc)
	if _, err := w.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: %s: writing frame: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		return 0, fmt.Errorf("wal: %s: syncing frame: %w", w.path, err)
	}
	w.seq = seq
	w.size += int64(len(frame))
	w.frames++
	return seq, nil
}

// LastSeq returns the last assigned sequence number (0 before any append).
func (w *WAL) LastSeq() uint64 { return w.seq }

// Size returns the log's current byte length.
func (w *WAL) Size() int64 { return w.size }

// Frames returns the number of committed frames currently in the file.
func (w *WAL) Frames() int { return w.frames }

// Reset atomically replaces the log with an empty one that continues the
// sequence numbering. Call it only once every logged batch is durably
// captured elsewhere (a checkpoint snapshot): a crash before the rename
// keeps the old frames, a crash after it keeps the empty log, and either
// state recovers consistently.
func (w *WAL) Reset() error {
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: resetting %s: %w", w.path, err)
	}
	if err := w.writeHeader(f, w.seq+1); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: syncing reset log: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: swapping reset log in: %w", err)
	}
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		f.Close()
		return err
	}
	w.f.Close()
	w.f = f
	w.size = headerSize
	w.frames = 0
	return nil
}

// AdvanceTo raises the log's sequence numbering so the next append commits
// at seq+1. It applies only to an empty log — a recovery aid for when a
// checkpoint outlives a deleted or recreated log file, so fresh appends can
// never reuse sequence numbers the checkpoint already covers. Advancing a log
// that holds frames, or backwards, is a no-op.
func (w *WAL) AdvanceTo(seq uint64) error {
	if w.frames > 0 || seq <= w.seq {
		return nil
	}
	if err := w.writeHeader(w.f, seq+1); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: %s: syncing advanced header: %w", w.path, err)
	}
	w.seq = seq
	return nil
}

// Sync flushes any buffered state to disk. Appends already sync on commit,
// so this matters only as a belt-and-braces call on shutdown.
func (w *WAL) Sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: %s: sync: %w", w.path, err)
	}
	return nil
}

// Close releases the log's file handle. The log stays on disk for the next
// Open.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	if err != nil {
		return fmt.Errorf("wal: %s: close: %w", w.path, err)
	}
	return nil
}

// writeHeader writes the file header declaring startSeq at offset 0 and
// leaves the cursor positioned right after it, ready for the first frame.
func (w *WAL) writeHeader(f *os.File, startSeq uint64) error {
	var hdr [headerSize]byte
	copy(hdr[:4], magic)
	hdr[4] = version
	binary.LittleEndian.PutUint64(hdr[5:], startSeq)
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %s: seeking to header: %w", w.path, err)
	}
	if _, err := f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: %s: writing header: %w", w.path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing dir %s: %w", dir, err)
	}
	return nil
}

// encodeBatch serializes rows into a frame payload (layout in doc.go).
func encodeBatch(rows []store.Row) []byte {
	n := 3 * binary.MaxVarintLen64
	for _, r := range rows {
		for _, d := range r.Dims {
			n += binary.MaxVarintLen64 + len(d)
		}
		n += 8 * len(r.Measures)
	}
	buf := make([]byte, 0, n)
	var u [binary.MaxVarintLen64]byte
	uv := func(v uint64) { buf = append(buf, u[:binary.PutUvarint(u[:], v)]...) }
	uv(uint64(len(rows)))
	uv(uint64(len(rows[0].Dims)))
	uv(uint64(len(rows[0].Measures)))
	for _, r := range rows {
		for _, d := range r.Dims {
			uv(uint64(len(d)))
			buf = append(buf, d...)
		}
		for _, m := range r.Measures {
			var f [8]byte
			binary.LittleEndian.PutUint64(f[:], math.Float64bits(m))
			buf = append(buf, f[:]...)
		}
	}
	return buf
}

// decodeBatch parses a frame payload back into rows; ok is false on any
// structural inconsistency (recovery treats the frame as corrupt).
func decodeBatch(b []byte) (rows []store.Row, ok bool) {
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, false
		}
		b = b[n:]
		return v, true
	}
	nRows, ok1 := uv()
	nDims, ok2 := uv()
	nMeasures, ok3 := uv()
	if !ok1 || !ok2 || !ok3 || nRows == 0 || nRows > maxFrameLen || nDims > 1<<20 || nMeasures > 1<<20 {
		return nil, false
	}
	rows = make([]store.Row, 0, nRows)
	for i := uint64(0); i < nRows; i++ {
		r := store.Row{Dims: make([]string, nDims), Measures: make([]float64, nMeasures)}
		for d := range r.Dims {
			l, ok := uv()
			if !ok || uint64(len(b)) < l {
				return nil, false
			}
			r.Dims[d] = string(b[:l])
			b = b[l:]
		}
		for m := range r.Measures {
			if len(b) < 8 {
				return nil, false
			}
			r.Measures[m] = math.Float64frombits(binary.LittleEndian.Uint64(b))
			b = b[8:]
		}
		rows = append(rows, r)
	}
	return rows, len(b) == 0
}
