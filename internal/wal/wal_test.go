package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/store"
)

func testRows(n, width int) []store.Row {
	rows := make([]store.Row, n)
	for i := range rows {
		dims := make([]string, width)
		for d := range dims {
			dims[d] = fmt.Sprintf("v%d-%d", i, d)
		}
		rows[i] = store.Row{Dims: dims, Measures: []float64{float64(i), float64(i) * 0.5}}
	}
	return rows
}

// writeLog commits the given batches into a fresh log and returns its path.
func writeLog(t *testing.T, batches ...[]store.Row) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "demo.wal")
	w, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d batches", len(got))
	}
	for i, rows := range batches {
		seq, err := w.Append(rows)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("batch %d got seq %d", i, seq)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAppendReplayRoundTrip(t *testing.T) {
	b1, b2 := testRows(3, 2), testRows(5, 2)
	path := writeLog(t, b1, b2)

	w, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(got) != 2 {
		t.Fatalf("replayed %d batches, want 2", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("seqs = %d, %d, want 1, 2", got[0].Seq, got[1].Seq)
	}
	if !reflect.DeepEqual(got[0].Rows, b1) || !reflect.DeepEqual(got[1].Rows, b2) {
		t.Error("replayed rows differ from the committed batches")
	}
	if w.LastSeq() != 2 || w.Frames() != 2 {
		t.Errorf("LastSeq=%d Frames=%d, want 2, 2", w.LastSeq(), w.Frames())
	}
	// The log stays appendable after a replaying open.
	if seq, err := w.Append(testRows(1, 2)); err != nil || seq != 3 {
		t.Fatalf("append after replay: seq=%d err=%v", seq, err)
	}
}

func TestSpecialValuesSurvive(t *testing.T) {
	rows := []store.Row{{
		Dims:     []string{"", `with "quotes" and, commas`, "ünïcode\n"},
		Measures: []float64{0, -0.0, 1e308},
	}}
	path := writeLog(t, rows)
	w, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(got) != 1 || !reflect.DeepEqual(got[0].Rows, rows) {
		t.Fatalf("replayed %+v, want %+v", got, rows)
	}
}

// TestTornTailTruncatedAtEveryOffset cuts a two-batch log at every byte
// offset past the first frame and asserts recovery yields exactly the frames
// that are intact at that length — never an error, never a partial frame —
// and that the file is truncated back so a subsequent append commits cleanly.
func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	b1, b2 := testRows(2, 2), testRows(4, 2)
	path := writeLog(t, b1, b2)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the first frame's end by replaying a one-batch log of b1.
	oneEnd := func() int {
		p := writeLog(t, b1)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return len(b)
	}()

	for cut := headerSize; cut < len(good); cut++ {
		cutPath := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(cutPath, good[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, got, err := Open(cutPath)
		if err != nil {
			t.Fatalf("cut at %d: open failed: %v", cut, err)
		}
		wantBatches := 0
		if cut >= oneEnd {
			wantBatches = 1
		}
		if len(got) != wantBatches {
			t.Fatalf("cut at %d: replayed %d batches, want %d", cut, len(got), wantBatches)
		}
		// The torn tail is gone: a new append lands on a clean boundary and
		// survives a second open.
		if _, err := w.Append(b2); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		w.Close()
		w2, again, err := Open(cutPath)
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		if len(again) != wantBatches+1 {
			t.Fatalf("cut at %d: reopen replayed %d batches, want %d", cut, len(again), wantBatches+1)
		}
		w2.Close()
	}
}

// TestCRCCorruptionTruncatesFromDamage flips one bit in each frame in turn;
// recovery must keep the intact prefix and drop the damaged frame and
// everything after it.
func TestCRCCorruptionTruncatesFromDamage(t *testing.T) {
	b1, b2, b3 := testRows(2, 2), testRows(3, 2), testRows(1, 2)
	path := writeLog(t, b1, b2, b3)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frameStart := func(n int) int { // byte offset where frame n begins
		off := headerSize
		for i := 0; i < n; i++ {
			p := writeLog(t, [][]store.Row{b1, b2, b3}[i])
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			off += len(b) - headerSize
		}
		return off
	}
	for frame := 0; frame < 3; frame++ {
		start := frameStart(frame)
		b := append([]byte(nil), good...)
		b[start+14] ^= 0x40 // flip a payload bit
		badPath := filepath.Join(t.TempDir(), "bad.wal")
		if err := os.WriteFile(badPath, b, 0o644); err != nil {
			t.Fatal(err)
		}
		w, got, err := Open(badPath)
		if err != nil {
			t.Fatalf("frame %d: open: %v", frame, err)
		}
		if len(got) != frame {
			t.Errorf("frame %d damaged: replayed %d batches, want %d", frame, len(got), frame)
		}
		w.Close()
	}
}

func TestResetContinuesSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.wal")
	w, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 3; i++ {
		if _, err := w.Append(testRows(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Frames() != 0 || w.Size() != headerSize {
		t.Errorf("after reset: frames=%d size=%d", w.Frames(), w.Size())
	}
	// Sequence numbering never repeats: the next append continues past the
	// truncated frames, and the reset survives a reopen.
	seq, err := w.Append(testRows(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Errorf("post-reset seq = %d, want 4", seq)
	}
	w.Close()
	w2, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != 1 || got[0].Seq != 4 {
		t.Fatalf("reopen after reset: %d batches, first seq %v", len(got), got)
	}
	if seq, err := w2.Append(testRows(1, 1)); err != nil || seq != 5 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

// TestAdvanceToSkipsCheckpointedSequences covers the checkpoint-outlives-log
// case: an empty log advanced past a checkpoint's sequence hands out fresh
// numbers above it, and the bump survives a reopen. A log that still holds
// frames is left alone.
func TestAdvanceToSkipsCheckpointedSequences(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.wal")
	w, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(7); err != nil {
		t.Fatal(err)
	}
	if seq, err := w.Append(testRows(1, 1)); err != nil || seq != 8 {
		t.Fatalf("append after AdvanceTo(7): seq=%d err=%v", seq, err)
	}
	// Frames exist now, so a further advance must not disturb the numbering.
	if err := w.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	if seq, err := w.Append(testRows(1, 1)); err != nil || seq != 9 {
		t.Fatalf("append after no-op advance: seq=%d err=%v", seq, err)
	}
	w.Close()
	w2, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != 2 || got[0].Seq != 8 || got[1].Seq != 9 {
		t.Fatalf("reopen replayed %+v, want seqs 8 and 9", got)
	}
}

func TestOpenRejectsForeignFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.wal")
	if err := os.WriteFile(path, []byte("this is not a log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Fatal("foreign file opened as a WAL")
	}
	// A future log version is refused rather than misread.
	good := writeLog(t, testRows(1, 1))
	b, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	b[4] = version + 1
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Fatal("future log version opened")
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	w, _, err := Open(filepath.Join(t.TempDir(), "demo.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(nil); err == nil {
		t.Fatal("empty batch committed")
	}
}

func TestOpenCreatesMissingDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state", "wal", "demo.wal")
	w, batches, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 0 {
		t.Fatalf("fresh log replayed %d batches", len(batches))
	}
	if _, err := w.Append(testRows(2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, again, err := Open(path); err != nil || len(again) != 1 {
		t.Fatalf("reopen: %v, %d batches", err, len(again))
	}
}
