// Package api defines the v1 wire protocol of the Reptile HTTP service: the
// request and response structs of every endpoint, the structured error
// envelope, and the machine-readable error codes. The server
// (internal/server, fronted by cmd/reptiled) encodes and decodes exclusively
// through this package, and so does the native Go client (reptile/client),
// so the two can never drift apart.
//
// The package depends only on the standard library: clients in other
// processes can vendor it without pulling in the engine.
//
// Endpoints (all JSON):
//
//	POST   /v1/datasets                  RegisterDatasetRequest → DatasetInfo
//	GET    /v1/datasets                  → ListDatasetsResponse
//	POST   /v1/datasets/{name}/append    AppendRequest → AppendResponse
//	POST   /v1/sessions                  CreateSessionRequest → Session
//	DELETE /v1/sessions/{id}             → 204 No Content
//	POST   /v1/sessions/{id}/recommend   RecommendRequest → RecommendResponse
//	POST   /v1/sessions/{id}/drill       DrillRequest → DrillResponse
//	GET    /v1/stats                     → StatsResponse
//	GET    /v1/metrics                   → Prometheus text exposition (not JSON)
//	GET    /healthz                      → HealthResponse
//
// Every non-2xx response carries an Error envelope.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Version is the protocol version this package describes; it is the path
// prefix of every versioned endpoint ("/v1/...").
const Version = "v1"

// ErrorCode is a machine-readable error class. Codes are stable across
// releases: clients branch on them, not on message text.
type ErrorCode string

// The v1 error codes.
const (
	// CodeBadRequest rejects a malformed request (bad JSON, missing fields,
	// unparsable complaint or hierarchy spec). HTTP 400.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeDatasetNotFound reports an unregistered dataset name. HTTP 404.
	CodeDatasetNotFound ErrorCode = "dataset_not_found"
	// CodeDatasetExists reports a registration name collision. HTTP 409.
	CodeDatasetExists ErrorCode = "dataset_exists"
	// CodeSessionNotFound reports an unknown session id. HTTP 404.
	CodeSessionNotFound ErrorCode = "session_not_found"
	// CodeSessionExpired reports a session reaped by its idle TTL; the
	// client must create a new one. HTTP 410.
	CodeSessionExpired ErrorCode = "session_expired"
	// CodeUnprocessable reports a well-formed request the engine cannot
	// evaluate (unknown measure, complaint tuple without provenance, an
	// append batch violating the hierarchy FDs). HTTP 422.
	CodeUnprocessable ErrorCode = "unprocessable"
	// CodeOverloaded reports that the dataset is at its concurrent
	// recommendation limit; retry after Error.RetryAfter seconds. HTTP 429.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeInternal reports a server-side failure. HTTP 500.
	CodeInternal ErrorCode = "internal"
)

// HTTPStatus returns the HTTP status code an error code travels under.
// Unknown codes map to 500.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeDatasetNotFound, CodeSessionNotFound:
		return http.StatusNotFound
	case CodeDatasetExists:
		return http.StatusConflict
	case CodeSessionExpired:
		return http.StatusGone
	case CodeUnprocessable:
		return http.StatusUnprocessableEntity
	case CodeOverloaded:
		return http.StatusTooManyRequests
	}
	return http.StatusInternalServerError
}

// CodeForStatus maps an HTTP status to the error code it conventionally
// carries — the fallback clients use when a response body holds no envelope
// (e.g. an intermediary proxy answered). Session-scoped requests map 404 to
// CodeSessionNotFound via the envelope itself; bare-status mapping picks the
// dataset variant for 404.
func CodeForStatus(status int) ErrorCode {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeDatasetNotFound
	case http.StatusConflict:
		return CodeDatasetExists
	case http.StatusGone:
		return CodeSessionExpired
	case http.StatusUnprocessableEntity:
		return CodeUnprocessable
	case http.StatusTooManyRequests:
		return CodeOverloaded
	}
	return CodeInternal
}

// Error is the v1 error envelope: every non-2xx response body decodes into
// it. It implements the error interface, so reptile/client returns *Error
// values directly.
type Error struct {
	// Message is the human-readable description (JSON field "error").
	Message string `json:"error"`
	// Code is the machine-readable error class.
	Code ErrorCode `json:"code"`
	// RetryAfter, in seconds, is set on CodeOverloaded responses (it mirrors
	// the Retry-After header).
	RetryAfter int `json:"retry_after,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return fmt.Sprintf("%s (%s)", e.Message, e.Code)
}

// IsCode reports whether err is (or wraps) an *Error with the given code.
func IsCode(err error, code ErrorCode) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.Code == code
}

// RegisterDatasetRequest registers a dataset (POST /v1/datasets). Exactly one
// of Path (a CSV or .rst file the server can read) and CSV (inline content)
// must be set. When Path names a .rst snapshot, measures and hierarchies come
// from the file and the request fields must be empty.
type RegisterDatasetRequest struct {
	Name     string   `json:"name"`
	Path     string   `json:"path,omitempty"`
	CSV      string   `json:"csv,omitempty"`
	Measures []string `json:"measures,omitempty"`
	// Hierarchies uses the CLI's compact notation, e.g.
	// "geo:region,district,village;time:year".
	Hierarchies string `json:"hierarchies,omitempty"`
	// Engine options; zero values select the core defaults.
	EMIterations int `json:"em_iterations,omitempty"`
	TopK         int `json:"topk,omitempty"`
	Workers      int `json:"workers,omitempty"`
	// Shards ≥ 2 partitions the dataset and serves it through the sharded
	// scatter-gather engine; 0 defers to the server's configured default, 1
	// forces single-shard serving. A partitioned .rst file carries its own
	// shard topology and rejects both fields.
	Shards int `json:"shards,omitempty"`
	// ShardKey names the dimension rows are partitioned on; it must be the
	// root attribute of one of the dataset's hierarchies. Empty defaults to
	// the first hierarchy's root.
	ShardKey string `json:"shard_key,omitempty"`
	// Retention, a Go duration string ("72h", "17520h"), bounds the dataset's
	// history: rows whose event time on RetentionDim falls more than this
	// window behind the newest event are dropped at the next flush. Empty
	// defers to the server's configured default window.
	Retention string `json:"retention,omitempty"`
	// RetentionDim names the time dimension retention is measured on. Values
	// parse as RFC 3339 timestamps down to bare years; rows with unparsable
	// values are kept. Required when Retention is set (unless the server
	// configures a default dimension).
	RetentionDim string `json:"retention_dim,omitempty"`
}

// DatasetInfo describes one registered dataset's currently-served snapshot
// version.
type DatasetInfo struct {
	Name        string   `json:"name"`
	Rows        int      `json:"rows"`
	Version     uint64   `json:"version"`
	Hierarchies []string `json:"hierarchies"`
	Measures    []string `json:"measures"`
	// Shards is the number of partitions the dataset is served from; 0 means
	// single-shard (unpartitioned) serving.
	Shards int `json:"shards,omitempty"`
}

// ListDatasetsResponse is the GET /v1/datasets payload: every registered
// dataset, sorted by name.
type ListDatasetsResponse struct {
	Datasets []DatasetInfo `json:"datasets"`
}

// AppendRequest ingests rows into a registered dataset
// (POST /v1/datasets/{name}/append): CSV content whose header names every
// dimension and measure column of the dataset (in any order).
type AppendRequest struct {
	CSV string `json:"csv"`
}

// AppendResponse reports the serving state after an append. On a dataset with
// write-ahead logging, rows are durable (WALSeq) the moment the response
// arrives but fold into the served version asynchronously: DatasetInfo then
// describes the version still serving, and PendingRows counts rows logged but
// not yet flushed. Without a WAL the swap is synchronous and both fields are
// zero.
type AppendResponse struct {
	DatasetInfo
	Appended int `json:"appended"`
	// WALSeq is the write-ahead-log sequence number that made this batch
	// durable; 0 when the dataset has no WAL.
	WALSeq uint64 `json:"wal_seq,omitempty"`
	// PendingRows counts rows (this batch included) committed to the WAL but
	// not yet folded into the served snapshot.
	PendingRows int `json:"pending_rows,omitempty"`
}

// CreateSessionRequest starts a drill-down session (POST /v1/sessions).
type CreateSessionRequest struct {
	Dataset string   `json:"dataset"`
	GroupBy []string `json:"group_by"`
	// TTLSeconds overrides the server's idle-session TTL for this session.
	TTLSeconds int `json:"ttl_seconds,omitempty"`
}

// Session describes a live drill-down session. State is the session's drill
// state key; it changes on every drill and keys recommendation caches.
type Session struct {
	ID        string   `json:"id"`
	Dataset   string   `json:"dataset"`
	GroupBy   []string `json:"group_by"`
	State     string   `json:"state"`
	ExpiresAt string   `json:"expires_at"`
}

// RecommendRequest evaluates a complaint
// (POST /v1/sessions/{id}/recommend).
type RecommendRequest struct {
	// Complaint uses the CLI's notation, quoted values included, e.g.
	// `agg=mean measure=severity dir=low district="New York" year=1986`.
	Complaint string `json:"complaint"`
}

// RecommendResponse carries one evaluated complaint.
type RecommendResponse struct {
	State string `json:"state"`
	// Cache is "hit", "miss", or "bypass" (caching disabled or complaint not
	// cacheable).
	Cache string `json:"cache"`
	// Recommendation carries the engine's deterministic Recommendation
	// encoding verbatim: the bytes equal json.Marshal of an in-process
	// Session.Recommend result. Use Decode for a typed view.
	Recommendation json.RawMessage `json:"recommendation"`
	// Stages is the request's per-stage timing breakdown, present only when
	// the request asked for it with an X-Reptile-Trace header. The stages
	// form an exclusive decomposition: their durations sum to at most the
	// request's wall time. The same breakdown travels compactly in the
	// X-Reptile-Trace response header.
	Stages []StageTiming `json:"stages,omitempty"`
}

// StageTiming is one pipeline stage of a traced recommend request.
type StageTiming struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

// Decode parses the raw recommendation bytes into their typed form.
func (r *RecommendResponse) Decode() (*Recommendation, error) {
	var rec Recommendation
	if err := json.Unmarshal(r.Recommendation, &rec); err != nil {
		return nil, fmt.Errorf("api: decoding recommendation: %w", err)
	}
	return &rec, nil
}

// Recommendation mirrors the engine's deterministic JSON encoding of one
// Reptile invocation: every candidate drill-down hierarchy's evaluation, and
// the name of the winning one.
type Recommendation struct {
	// Best names the winning hierarchy (an entry of Hierarchies).
	Best        string            `json:"best"`
	Hierarchies []HierarchyResult `json:"hierarchies"`
}

// BestResult returns the winning hierarchy's evaluation, or nil.
func (r *Recommendation) BestResult() *HierarchyResult {
	for i := range r.Hierarchies {
		if r.Hierarchies[i].Hierarchy == r.Best {
			return &r.Hierarchies[i]
		}
	}
	return nil
}

// HierarchyResult is the evaluation of one candidate drill-down hierarchy:
// the attribute the drill-down adds, the complained aggregate's current
// value, and the drill-down groups ranked by repaired complaint score.
type HierarchyResult struct {
	Hierarchy string       `json:"hierarchy"`
	Attr      string       `json:"attr"`
	Current   float64      `json:"current"`
	BestScore float64      `json:"best_score"`
	Ranked    []GroupScore `json:"ranked"`
}

// GroupScore is one ranked drill-down group.
type GroupScore struct {
	// Group is the group's key values in group-by attribute order.
	Group []string `json:"group"`
	// Predicted maps base statistics ("count", "mean", "std") to the
	// multi-level model's expected values.
	Predicted map[string]float64 `json:"predicted"`
	// Repaired is the complained tuple's aggregate after repairing this
	// group; Score is fcomp(Repaired); Gain is fcomp(current) − Score.
	Repaired float64 `json:"repaired"`
	Score    float64 `json:"score"`
	Gain     float64 `json:"gain"`
}

// DrillRequest accepts a recommendation (POST /v1/sessions/{id}/drill),
// extending the named hierarchy's group-by prefix by one attribute.
type DrillRequest struct {
	Hierarchy string `json:"hierarchy"`
}

// DrillResponse reports the session's group-by and state after a drill.
type DrillResponse struct {
	GroupBy []string `json:"group_by"`
	State   string   `json:"state"`
}

// CubeStatus describes a dataset version's materialized rollup cube.
type CubeStatus struct {
	Present bool `json:"present"`
	// Levels is the number of materialized lattice groupings, Cells the
	// total precomputed group count across them (0 when absent).
	Levels int `json:"levels,omitempty"`
	Cells  int `json:"cells,omitempty"`
}

// DatasetStats is one registered dataset's serving state: the snapshot
// version currently answering queries, its row count, the sessions bound to
// it, and whether a materialized cube backs its group-bys.
type DatasetStats struct {
	Version  uint64     `json:"version"`
	Rows     int        `json:"rows"`
	Sessions int        `json:"sessions"`
	Cube     CubeStatus `json:"cube"`
	// Shards is the partition count (0 when unsharded) and ShardRows the
	// per-shard row counts, in shard order.
	Shards    int   `json:"shards,omitempty"`
	ShardRows []int `json:"shard_rows,omitempty"`
	// OpenMode reports how the serving snapshot holds its columns: "eager"
	// (heap slices) or "mapped" (memory-mapped .rst file, columns decoded
	// lazily). ResidentColumnBytes is the heap footprint of materialized
	// column payloads — 0 for a mapped dataset, whose payloads stay in the
	// page cache.
	OpenMode            string `json:"open_mode"`
	ResidentColumnBytes int64  `json:"resident_column_bytes"`
	// WAL reports the dataset's write-ahead log and micro-batch flusher state;
	// nil when the dataset is not WAL-backed.
	WAL *WALStatus `json:"wal,omitempty"`
	// Retention reports the dataset's time-window enforcement; nil when no
	// retention window is configured.
	Retention *RetentionStatus `json:"retention,omitempty"`
	// Cache reports the recommendation cache's hit/miss counters for this
	// dataset alone (Size is meaningful only on the global CacheStats).
	Cache *CacheStats `json:"cache,omitempty"`
}

// WALStatus is one WAL-backed dataset's durability and flusher state.
type WALStatus struct {
	// LastSeq is the newest sequence number committed to the log.
	LastSeq uint64 `json:"last_seq"`
	// FlushedSeq is the newest sequence folded into the served snapshot;
	// rows between FlushedSeq and LastSeq are durable but pending.
	FlushedSeq uint64 `json:"flushed_seq"`
	// PendingRows and PendingBytes size the micro-batch waiting to flush.
	PendingRows  int   `json:"pending_rows"`
	PendingBytes int   `json:"pending_bytes"`
	SizeBytes    int64 `json:"size_bytes"`
	// Flushes counts coalesced folds into the serving state since startup.
	Flushes uint64 `json:"flushes"`
	// DroppedRows counts logged rows the flusher could not fold (e.g. an FD
	// violation discovered at build time); they remain in the log but are
	// skipped on replay too.
	DroppedRows uint64 `json:"dropped_rows,omitempty"`
	// LastFlush is the RFC 3339 time of the newest successful flush; empty
	// before the first one.
	LastFlush string `json:"last_flush,omitempty"`
	// LastError is the most recent flush or checkpoint failure, if any.
	LastError string `json:"last_error,omitempty"`
}

// RetentionStatus is one dataset's time-window retention state.
type RetentionStatus struct {
	// Window is the configured retention window as a Go duration string, and
	// Dim the time dimension it is measured on.
	Window string `json:"window"`
	Dim    string `json:"dim"`
	// Horizon is the newest enforced cut-off (RFC 3339): rows older than it
	// were dropped. Empty until a pass drops rows.
	Horizon string `json:"horizon,omitempty"`
	// DroppedRows counts rows dropped by retention since startup.
	DroppedRows uint64 `json:"dropped_rows,omitempty"`
}

// CacheStats reports the recommendation LRU's counters.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Size   int    `json:"size"`
}

// ServerInfo identifies the serving process in GET /v1/stats.
type ServerInfo struct {
	// Version is the build version the daemon was started with (also printed
	// by reptiled -version); empty when unset.
	Version string `json:"version,omitempty"`
	// GoVersion is the runtime's Go version string.
	GoVersion string `json:"go_version"`
	// StartTime is the process start in RFC 3339; UptimeSeconds the elapsed
	// time since then.
	StartTime     string  `json:"start_time"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// LatencySummary summarizes one endpoint's latency distribution, derived from
// its fixed-bucket histogram (quantiles are bucket-interpolated estimates,
// clamped to the recorded maximum). All durations are milliseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// EndpointStats is one endpoint's serving counters in GET /v1/stats.
type EndpointStats struct {
	Requests uint64 `json:"requests"`
	InFlight int64  `json:"in_flight"`
	// Errors maps api error codes to counts; zero-count codes are omitted.
	Errors  map[string]uint64 `json:"errors,omitempty"`
	Latency LatencySummary    `json:"latency"`
	// Cache carries the endpoint's recommendation-cache hit/miss counters,
	// present only on cache-backed endpoints (recommend).
	Cache *CacheStats `json:"cache,omitempty"`
}

// StageStats is one recommend-pipeline stage's aggregate across every traced
// request since startup.
type StageStats struct {
	Name    string  `json:"name"`
	Count   uint64  `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

// StatsResponse is the GET /v1/stats payload.
type StatsResponse struct {
	Status   string                  `json:"status"`
	Server   ServerInfo              `json:"server"`
	Datasets map[string]DatasetStats `json:"datasets"`
	Sessions int                     `json:"sessions"`
	Cache    CacheStats              `json:"cache"`
	// Endpoints maps endpoint labels ("recommend", "append", ...) to their
	// serving counters; Stages aggregates the recommend pipeline's per-stage
	// timings in first-seen order.
	Endpoints map[string]EndpointStats `json:"endpoints,omitempty"`
	Stages    []StageStats             `json:"stages,omitempty"`
}

// HealthResponse is the GET /healthz payload.
type HealthResponse struct {
	Status   string     `json:"status"`
	Datasets int        `json:"datasets"`
	Sessions int        `json:"sessions"`
	Cache    CacheStats `json:"cache"`
}
