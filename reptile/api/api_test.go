package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

func TestErrorEnvelopeJSON(t *testing.T) {
	b, err := json.Marshal(&Error{Message: "too busy", Code: CodeOverloaded, RetryAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":"too busy","code":"overloaded","retry_after":1}`
	if string(b) != want {
		t.Errorf("envelope = %s, want %s", b, want)
	}
	// retry_after is omitted when unset.
	b, _ = json.Marshal(&Error{Message: "nope", Code: CodeDatasetNotFound})
	if want := `{"error":"nope","code":"dataset_not_found"}`; string(b) != want {
		t.Errorf("envelope = %s, want %s", b, want)
	}
}

func TestErrorInterface(t *testing.T) {
	e := &Error{Message: "session \"s_1\" expired", Code: CodeSessionExpired}
	if got := e.Error(); got != `session "s_1" expired (session_expired)` {
		t.Errorf("Error() = %q", got)
	}
	wrapped := fmt.Errorf("recommend: %w", e)
	if !IsCode(wrapped, CodeSessionExpired) {
		t.Error("IsCode missed a wrapped envelope")
	}
	if IsCode(wrapped, CodeOverloaded) {
		t.Error("IsCode matched the wrong code")
	}
	if IsCode(errors.New("plain"), CodeSessionExpired) {
		t.Error("IsCode matched a non-envelope error")
	}
}

func TestCodeStatusRoundTrip(t *testing.T) {
	// Every code maps to a distinct-enough status, and CodeForStatus is its
	// inverse up to the documented 404 collapse (session vs dataset).
	codes := []ErrorCode{
		CodeBadRequest, CodeDatasetNotFound, CodeDatasetExists,
		CodeSessionNotFound, CodeSessionExpired, CodeUnprocessable,
		CodeOverloaded, CodeInternal,
	}
	for _, c := range codes {
		status := c.HTTPStatus()
		if status < 400 || status > 599 {
			t.Errorf("%s: status %d out of error range", c, status)
		}
		back := CodeForStatus(status)
		if c == CodeSessionNotFound {
			if back != CodeDatasetNotFound {
				t.Errorf("%s: round-trip = %s, want the documented 404 collapse", c, back)
			}
			continue
		}
		if back != c {
			t.Errorf("%s: round-trip through status %d = %s", c, status, back)
		}
	}
	if got := ErrorCode("mystery").HTTPStatus(); got != 500 {
		t.Errorf("unknown code status = %d, want 500", got)
	}
}

func TestRecommendResponseDecode(t *testing.T) {
	raw := `{"best":"geo","hierarchies":[{"hierarchy":"geo","attr":"village","current":2.5,"best_score":-1,` +
		`"ranked":[{"group":["Ofla","Zata"],"predicted":{"mean":7.1},"repaired":6,"score":-6,"gain":1}]}]}`
	rr := &RecommendResponse{State: "geo:1", Cache: "miss", Recommendation: json.RawMessage(raw)}
	rec, err := rr.Decode()
	if err != nil {
		t.Fatal(err)
	}
	best := rec.BestResult()
	if best == nil || best.Attr != "village" || best.Ranked[0].Predicted["mean"] != 7.1 {
		t.Errorf("decoded = %+v", rec)
	}
	if (&Recommendation{Best: "gone"}).BestResult() != nil {
		t.Error("BestResult over missing hierarchy should be nil")
	}
	rr.Recommendation = json.RawMessage("{")
	if _, err := rr.Decode(); err == nil {
		t.Error("Decode accepted truncated JSON")
	}
}
