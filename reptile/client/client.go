// Package client is the native Go client for the Reptile v1 HTTP protocol
// (reptile/api) served by cmd/reptiled. It covers the full surface —
// dataset registration, row appends, dataset listing, session lifecycle
// (create, recommend, drill, release), and the stats/health endpoints — with
// context support on every call and typed errors: any non-2xx response is
// returned as an *api.Error carrying the server's machine-readable code.
//
//	c, err := client.New("http://127.0.0.1:8372")
//	if err != nil { ... }
//	info, err := c.RegisterDataset(ctx, api.RegisterDatasetRequest{
//	        Name: "survey", Path: "survey.rst",
//	})
//	sess, err := c.CreateSession(ctx, api.CreateSessionRequest{
//	        Dataset: "survey", GroupBy: []string{"district", "year"},
//	})
//	rr, err := sess.Recommend(ctx, `agg=std measure=severity dir=high district=Ofla year=1986`)
//	if api.IsCode(err, api.CodeSessionExpired) { /* re-create the session */ }
//
// The client depends only on the standard library and reptile/api; it never
// imports the engine, so it compiles into processes that have no business
// linking the evaluator.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/reptile/api"
)

// Client talks the v1 protocol to one Reptile server. It is safe for
// concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// New builds a client for the server at baseURL (e.g.
// "http://127.0.0.1:8372"). The URL must carry a scheme and host; a path
// prefix is kept, so servers mounted behind a proxy path work.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// maxErrorBody bounds how much of a non-JSON error response is read before
// synthesizing an envelope from the status code.
const maxErrorBody = 1 << 20

// do sends one request and decodes the response into out (skipped when out
// is nil or the response is 204). Non-2xx responses decode into *api.Error;
// bodies that carry no envelope (a proxy answered) get one synthesized from
// the status code.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doHeaders(ctx, method, path, nil, in, out)
}

// doHeaders is do with extra request headers.
func (c *Client) doHeaders(ctx context.Context, method, path string, hdr http.Header, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into an *api.Error.
func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	var ae api.Error
	if err := json.Unmarshal(b, &ae); err == nil && ae.Message != "" {
		if ae.Code == "" {
			ae.Code = api.CodeForStatus(resp.StatusCode)
		}
		return &ae
	}
	msg := strings.TrimSpace(string(b))
	if msg == "" {
		msg = resp.Status
	}
	return &api.Error{Message: msg, Code: api.CodeForStatus(resp.StatusCode)}
}

// RegisterDataset registers a dataset (POST /v1/datasets) and returns its
// first served version.
func (c *Client) RegisterDataset(ctx context.Context, req api.RegisterDatasetRequest) (*api.DatasetInfo, error) {
	var out api.DatasetInfo
	if err := c.do(ctx, http.MethodPost, "/v1/datasets", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Datasets lists every registered dataset (GET /v1/datasets), sorted by
// name.
func (c *Client) Datasets(ctx context.Context) ([]api.DatasetInfo, error) {
	var out api.ListDatasetsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/datasets", nil, &out); err != nil {
		return nil, err
	}
	return out.Datasets, nil
}

// Append ingests CSV rows into a registered dataset
// (POST /v1/datasets/{name}/append); the server hot-swaps the successor
// version in and reports it.
func (c *Client) Append(ctx context.Context, dataset, csv string) (*api.AppendResponse, error) {
	var out api.AppendResponse
	path := "/v1/datasets/" + url.PathEscape(dataset) + "/append"
	if err := c.do(ctx, http.MethodPost, path, api.AppendRequest{CSV: csv}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the per-dataset serving counters (GET /v1/stats).
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	var out api.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the Prometheus text exposition (GET /v1/metrics) verbatim:
// per-endpoint request/error/in-flight counters, latency histograms, and the
// recommend pipeline's per-stage totals.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("client: GET /v1/metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return "", decodeError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: reading /v1/metrics response: %w", err)
	}
	return string(b), nil
}

// Health fetches the liveness payload (GET /healthz).
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	var out api.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CreateSession starts a drill-down session (POST /v1/sessions) and returns
// a handle bound to it.
func (c *Client) CreateSession(ctx context.Context, req api.CreateSessionRequest) (*Session, error) {
	var out api.Session
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &out); err != nil {
		return nil, err
	}
	return &Session{c: c, info: out}, nil
}

// Session rebinds a handle to an existing session id (e.g. one persisted
// across process restarts). No request is made; the first call on the handle
// reveals whether the session is still alive.
func (c *Client) Session(id string) *Session {
	return &Session{c: c, info: api.Session{ID: id}}
}

// ReleaseSession explicitly releases a session (DELETE /v1/sessions/{id}),
// freeing its server-side TTL-table entry and cached recommendations before
// the idle TTL would. Releasing an unknown (or already released) session
// returns an *api.Error with CodeSessionNotFound.
func (c *Client) ReleaseSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Session is a handle on one server-side drill-down session.
type Session struct {
	c    *Client
	info api.Session
}

// ID returns the session id.
func (s *Session) ID() string { return s.info.ID }

// Info returns the session description from creation time. The drill state
// it reports is a snapshot; Drill responses carry the current one.
func (s *Session) Info() api.Session { return s.info }

// Recommend evaluates a complaint in the compact notation
// (POST /v1/sessions/{id}/recommend). The response's Recommendation field
// holds the engine's deterministic JSON encoding verbatim; Decode it for a
// typed view.
func (s *Session) Recommend(ctx context.Context, complaint string) (*api.RecommendResponse, error) {
	var out api.RecommendResponse
	path := "/v1/sessions/" + url.PathEscape(s.info.ID) + "/recommend"
	if err := s.c.do(ctx, http.MethodPost, path, api.RecommendRequest{Complaint: complaint}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RecommendTraced is Recommend with per-stage timings: it sets the
// X-Reptile-Trace request header, so the response's Stages field carries the
// request's exclusive stage decomposition (the same data travels compactly in
// the X-Reptile-Trace response header).
func (s *Session) RecommendTraced(ctx context.Context, complaint string) (*api.RecommendResponse, error) {
	var out api.RecommendResponse
	path := "/v1/sessions/" + url.PathEscape(s.info.ID) + "/recommend"
	hdr := http.Header{"X-Reptile-Trace": []string{"1"}}
	if err := s.c.doHeaders(ctx, http.MethodPost, path, hdr, api.RecommendRequest{Complaint: complaint}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Drill accepts a recommendation (POST /v1/sessions/{id}/drill), extending
// the named hierarchy's group-by prefix by one attribute.
func (s *Session) Drill(ctx context.Context, hierarchy string) (*api.DrillResponse, error) {
	var out api.DrillResponse
	path := "/v1/sessions/" + url.PathEscape(s.info.ID) + "/drill"
	if err := s.c.do(ctx, http.MethodPost, path, api.DrillRequest{Hierarchy: hierarchy}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Release releases the session on the server; the handle is dead afterwards.
func (s *Session) Release(ctx context.Context) error {
	return s.c.ReleaseSession(ctx, s.info.ID)
}
