package client_test

// Round-trip tests: the native client against an httptest-hosted
// internal/server. The load-bearing assertion is byte identity — a
// recommendation fetched through the full client → HTTP → server → engine
// chain must equal, byte for byte, json.Marshal of a directly-driven
// internal/core session — plus the typed-error mapping for every failure
// status the protocol defines. (The internal imports here are test-only:
// the client package itself depends on nothing but stdlib and reptile/api.)

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/server"
	"repro/reptile/api"
	"repro/reptile/client"
)

const testCSV = "district,village,year,severity\n" +
	"Ofla,Adishim,1986,8\nOfla,Adishim,1987,7\nOfla,Zata,1986,2\nOfla,Zata,1987,7\n" +
	"Raya,Kukufto,1986,8\nRaya,Kukufto,1987,6\nRaya,Mehoni,1986,7\nRaya,Mehoni,1987,6\n"

const testHierarchies = "geo:district,village;time:year"

const testComplaint = "agg=mean measure=severity dir=low district=Ofla year=1986"

// appendCSV adds reports for a brand-new village, column order shuffled.
const appendCSV = "severity,year,village,district\n4,1986,Bala,Raya\n5,1987,Bala,Raya\n"

func newClient(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

// directSession builds the comparison engine straight on internal/core.
func directSession(t *testing.T, groupBy []string) *core.Session {
	t.Helper()
	hs, err := data.ParseHierarchySpec(testHierarchies)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.ReadCSV(strings.NewReader(testCSV), "drought", []string{"severity"}, hs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ds, core.Options{EMIterations: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(groupBy)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func directJSON(t *testing.T, sess *core.Session, complaint string) []byte {
	t.Helper()
	c, err := core.ParseComplaint(complaint)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Recommend(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestClientRoundTrip(t *testing.T) {
	ctx := context.Background()
	_, c := newClient(t, server.Config{})

	info, err := c.RegisterDataset(ctx, api.RegisterDatasetRequest{
		Name:         "drought",
		CSV:          testCSV,
		Measures:     []string{"severity"},
		Hierarchies:  testHierarchies,
		EMIterations: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "drought" || info.Rows != 8 || info.Version != 1 {
		t.Errorf("register info = %+v", info)
	}

	list, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "drought" || list[0].Rows != 8 {
		t.Errorf("datasets = %+v", list)
	}

	// Start at district granularity so a drill still leaves the time
	// hierarchy as a candidate afterwards.
	sess, err := c.CreateSession(ctx, api.CreateSessionRequest{
		Dataset: "drought",
		GroupBy: []string{"district"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID() == "" || sess.Info().State != "geo:1|time:0" {
		t.Fatalf("session = %+v", sess.Info())
	}

	// The recommendation served over the wire is byte-identical to the
	// in-process engine's.
	complaint := "agg=mean measure=severity dir=low district=Ofla"
	rr, err := sess.Recommend(ctx, complaint)
	if err != nil {
		t.Fatal(err)
	}
	direct := directSession(t, []string{"district"})
	if want := directJSON(t, direct, complaint); !bytes.Equal(rr.Recommendation, want) {
		t.Errorf("served recommendation differs from direct engine:\nserved: %s\ndirect: %s",
			rr.Recommendation, want)
	}

	// The typed decode agrees with the raw bytes.
	rec, err := rr.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best == "" || rec.BestResult() == nil || len(rec.Hierarchies) != 2 {
		t.Errorf("decoded recommendation = %+v", rec)
	}
	if len(rec.BestResult().Ranked) == 0 || rec.BestResult().Ranked[0].Group[0] != "Ofla" {
		t.Errorf("ranked = %+v", rec.BestResult().Ranked)
	}

	// A second identical complaint is a cache hit with the same bytes.
	rr2, err := sess.Recommend(ctx, complaint)
	if err != nil {
		t.Fatal(err)
	}
	if rr2.Cache != "hit" || !bytes.Equal(rr2.Recommendation, rr.Recommendation) {
		t.Errorf("second recommend: cache %q, bytes equal %v", rr2.Cache, bytes.Equal(rr2.Recommendation, rr.Recommendation))
	}

	// Drilling through the client matches drilling the direct session.
	dr, err := sess.Drill(ctx, "geo")
	if err != nil {
		t.Fatal(err)
	}
	if dr.State != "geo:2|time:0" {
		t.Errorf("drill state = %q", dr.State)
	}
	if err := direct.Drill("geo"); err != nil {
		t.Fatal(err)
	}
	deep := `agg=mean measure=severity dir=low district=Ofla village=Zata`
	rr3, err := sess.Recommend(ctx, deep)
	if err != nil {
		t.Fatal(err)
	}
	if want := directJSON(t, direct, deep); !bytes.Equal(rr3.Recommendation, want) {
		t.Errorf("drilled recommendation differs from direct engine:\nserved: %s\ndirect: %s",
			rr3.Recommendation, want)
	}

	// Appends hot-swap a new version, visible in the listing and stats.
	ar, err := c.Append(ctx, "drought", appendCSV)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Appended != 2 || ar.Version != 2 || ar.Rows != 10 {
		t.Errorf("append = %+v", ar)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d := st.Datasets["drought"]; d.Version != 2 || d.Rows != 10 || d.Sessions != 1 {
		t.Errorf("stats = %+v", d)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Datasets != 1 || h.Sessions != 1 {
		t.Errorf("health = %+v", h)
	}

	// Release frees the session; the handle is dead afterwards.
	if err := sess.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Recommend(ctx, complaint); !api.IsCode(err, api.CodeSessionNotFound) {
		t.Errorf("recommend after release = %v, want session_not_found", err)
	}
	if h, err := c.Health(ctx); err != nil || h.Sessions != 0 {
		t.Errorf("health after release = %+v (%v), want 0 sessions", h, err)
	}
}

func TestTypedErrors(t *testing.T) {
	ctx := context.Background()
	_, c := newClient(t, server.Config{})

	if _, err := c.RegisterDataset(ctx, api.RegisterDatasetRequest{
		Name: "drought", CSV: testCSV, Measures: []string{"severity"},
		Hierarchies: testHierarchies, EMIterations: 4,
	}); err != nil {
		t.Fatal(err)
	}

	// 409: duplicate registration.
	_, err := c.RegisterDataset(ctx, api.RegisterDatasetRequest{
		Name: "drought", CSV: testCSV, Measures: []string{"severity"},
		Hierarchies: testHierarchies,
	})
	if !api.IsCode(err, api.CodeDatasetExists) {
		t.Errorf("duplicate register = %v, want dataset_exists", err)
	}

	// 404: unknown dataset.
	if _, err := c.CreateSession(ctx, api.CreateSessionRequest{Dataset: "nope"}); !api.IsCode(err, api.CodeDatasetNotFound) {
		t.Errorf("unknown dataset = %v, want dataset_not_found", err)
	}
	if _, err := c.Append(ctx, "nope", appendCSV); !api.IsCode(err, api.CodeDatasetNotFound) {
		t.Errorf("append to unknown dataset = %v, want dataset_not_found", err)
	}

	// 404: unknown session, via every session-scoped call.
	ghost := c.Session("s_nope")
	if _, err := ghost.Recommend(ctx, testComplaint); !api.IsCode(err, api.CodeSessionNotFound) {
		t.Errorf("unknown session recommend = %v, want session_not_found", err)
	}
	if _, err := ghost.Drill(ctx, "geo"); !api.IsCode(err, api.CodeSessionNotFound) {
		t.Errorf("unknown session drill = %v, want session_not_found", err)
	}
	if err := ghost.Release(ctx); !api.IsCode(err, api.CodeSessionNotFound) {
		t.Errorf("unknown session release = %v, want session_not_found", err)
	}

	// 400: malformed complaint.
	sess, err := c.CreateSession(ctx, api.CreateSessionRequest{
		Dataset: "drought", GroupBy: []string{"district", "year"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Recommend(ctx, "agg=mean"); !api.IsCode(err, api.CodeBadRequest) {
		t.Errorf("bad complaint = %v, want bad_request", err)
	}

	// 422: well-formed but unevaluable.
	if _, err := sess.Recommend(ctx, "agg=mean measure=bogus dir=low district=Ofla year=1986"); !api.IsCode(err, api.CodeUnprocessable) {
		t.Errorf("unknown measure = %v, want unprocessable", err)
	}

	// The error value doubles as a plain error with code and message.
	_, err = sess.Recommend(ctx, "agg=mean")
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeBadRequest || ae.Message == "" {
		t.Errorf("error = %#v, want *api.Error with bad_request and a message", err)
	}
}

// TestSessionExpiredError exercises the 410 path: a 1-second TTL session
// outlived by the wall clock.
func TestSessionExpiredError(t *testing.T) {
	ctx := context.Background()
	_, c := newClient(t, server.Config{})
	if _, err := c.RegisterDataset(ctx, api.RegisterDatasetRequest{
		Name: "drought", CSV: testCSV, Measures: []string{"severity"},
		Hierarchies: testHierarchies, EMIterations: 4,
	}); err != nil {
		t.Fatal(err)
	}
	sess, err := c.CreateSession(ctx, api.CreateSessionRequest{
		Dataset: "drought", GroupBy: []string{"district", "year"}, TTLSeconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(1100 * time.Millisecond)
	if _, err := sess.Recommend(ctx, testComplaint); !api.IsCode(err, api.CodeSessionExpired) {
		t.Errorf("expired session = %v, want session_expired", err)
	}
	// The expired session was reaped, so the next call is a plain 404.
	if _, err := sess.Recommend(ctx, testComplaint); !api.IsCode(err, api.CodeSessionNotFound) {
		t.Errorf("reaped session = %v, want session_not_found", err)
	}
}

// TestOverloadedError exercises the 429 path deterministically: a repair
// hook blocks the first recommendation mid-evaluation while it holds the
// dataset's only limiter slot, so a concurrent request is refused with
// retry_after populated.
func TestOverloadedError(t *testing.T) {
	ctx := context.Background()
	s := server.New(server.Config{MaxInflight: 1, QueueWait: -1, CacheSize: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	hs, err := data.ParseHierarchySpec(testHierarchies)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.ReadCSV(strings.NewReader(testCSV), "drought", []string{"severity"}, hs)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	err = s.RegisterDataset("drought", ds, core.Options{
		EMIterations: 4,
		Workers:      1,
		Repair: func(st agg.Stats, pred map[agg.Func]float64) agg.Stats {
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
			return st
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	sess, err := c.CreateSession(ctx, api.CreateSessionRequest{
		Dataset: "drought", GroupBy: []string{"district", "year"},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var firstErr error
	go func() {
		defer wg.Done()
		_, firstErr = sess.Recommend(ctx, testComplaint)
	}()
	<-started // the first request is inside the engine, slot held

	_, err = sess.Recommend(ctx, testComplaint)
	if !api.IsCode(err, api.CodeOverloaded) {
		t.Errorf("saturated recommend = %v, want overloaded", err)
	}
	var ae *api.Error
	if errors.As(err, &ae) && ae.RetryAfter != 1 {
		t.Errorf("retry_after = %d, want 1", ae.RetryAfter)
	}

	close(release)
	wg.Wait()
	if firstErr != nil {
		t.Errorf("first recommend: %v", firstErr)
	}
}

// TestErrorFallback synthesizes envelopes for responses that carry none
// (e.g. a proxy answered with plain text).
func TestErrorFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gateway says no", http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Health(context.Background())
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeOverloaded || !strings.Contains(ae.Message, "gateway says no") {
		t.Errorf("fallback error = %#v, want synthesized overloaded envelope", err)
	}
}

func TestNewValidatesBaseURL(t *testing.T) {
	if _, err := client.New("not a url"); err == nil {
		t.Error("client.New accepted a URL without scheme/host")
	}
	if _, err := client.New("127.0.0.1:8372"); err == nil {
		t.Error("client.New accepted a schemeless URL")
	}
}
