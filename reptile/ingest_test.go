package reptile_test

// SDK-level coverage of the ingestion options: WithWAL durability across a
// crash (Close without Save), Save acting as a checkpoint that truncates the
// log, and WithRetention bounding history on an event-time dimension.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/reptile"
)

func openDrought(t *testing.T, path string, extra ...reptile.Option) *reptile.Engine {
	t.Helper()
	opts := append([]reptile.Option{
		reptile.WithMeasures("severity"),
		reptile.WithHierarchies(testHierarchies),
		reptile.WithName("drought"),
		reptile.WithEMIterations(4),
		reptile.WithWorkers(1),
	}, extra...)
	eng, err := reptile.Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func complainJSON(t *testing.T, eng *reptile.Engine, spec string) []byte {
	t.Helper()
	sess, err := eng.NewSession([]string{"district", "year"})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Complain(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

var appendedRows = []reptile.Row{
	{Dims: []string{"Raya", "Bala", "1986"}, Measures: []float64{4}},
	{Dims: []string{"Raya", "Bala", "1987"}, Measures: []float64{5}},
}

// TestWALReplayAfterCrash appends against a logged engine, "crashes" (Close
// without Save), reopens the same source with the same log directory, and
// requires the replayed engine to answer byte-identically.
func TestWALReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	csvPath := writeTestCSV(t)
	complaint := "agg=mean measure=severity dir=low district=Raya year=1986"

	eng := openDrought(t, csvPath, reptile.WithWAL(dir))
	if err := eng.Append(appendedRows); err != nil {
		t.Fatal(err)
	}
	want := complainJSON(t, eng, complaint)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// A closed engine must not take silent, unlogged appends.
	if err := eng.Append(appendedRows); err == nil {
		t.Fatal("append after Close succeeded")
	}

	reopened := openDrought(t, csvPath, reptile.WithWAL(dir))
	defer reopened.Close()
	if n := reopened.Dataset().NumRows(); n != 10 {
		t.Fatalf("replayed rows = %d, want 10", n)
	}
	if got := complainJSON(t, reopened, complaint); !bytes.Equal(got, want) {
		t.Errorf("replayed recommendation differs:\nreplayed: %s\nlive: %s", got, want)
	}
}

// TestSaveCheckpointsAndTruncatesWAL pins Save's checkpoint contract: the log
// truncates once the snapshot captures its rows, and later appends land in
// the log again for the next replay.
func TestSaveCheckpointsAndTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	eng := openDrought(t, writeTestCSV(t), reptile.WithWAL(dir))
	if err := eng.Append(appendedRows); err != nil {
		t.Fatal(err)
	}
	rstPath := filepath.Join(dir, "drought.rst")
	info, err := eng.Save(rstPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 10 {
		t.Fatalf("saved rows = %d, want 10", info.Rows)
	}
	// 13 bytes is a bare log header: the appended batch was truncated away.
	if fi, err := os.Stat(filepath.Join(dir, "drought.wal")); err != nil || fi.Size() != 13 {
		t.Fatalf("log after Save: size=%v err=%v, want the 13-byte header", fi.Size(), err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// The snapshot + empty log round-trips; a post-checkpoint append replays
	// on the open after that.
	eng2, err := reptile.Open(rstPath, reptile.WithEMIterations(4), reptile.WithWorkers(1), reptile.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	if n := eng2.Dataset().NumRows(); n != 10 {
		t.Fatalf("reopened snapshot rows = %d, want 10", n)
	}
	if err := eng2.Append([]reptile.Row{{Dims: []string{"Ofla", "Dela", "1986"}, Measures: []float64{6}}}); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	eng3, err := reptile.Open(rstPath, reptile.WithEMIterations(4), reptile.WithWorkers(1), reptile.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer eng3.Close()
	if n := eng3.Dataset().NumRows(); n != 11 {
		t.Errorf("rows after post-checkpoint replay = %d, want 11", n)
	}
}

// TestWithRetentionDropsOldRows checks the event-time window at open and on
// append: the horizon follows the newest event, never the clock.
func TestWithRetentionDropsOldRows(t *testing.T) {
	// 30 days on a year-granularity dimension: only the newest year survives.
	eng := openDrought(t, writeTestCSV(t), reptile.WithRetention(720*time.Hour, "year"))
	defer eng.Close()
	if n := eng.Dataset().NumRows(); n != 4 {
		t.Fatalf("rows after retention at open = %d, want 4 (1986 dropped)", n)
	}
	// A 1988 row advances the horizon past 1987.
	if err := eng.Append([]reptile.Row{{Dims: []string{"Raya", "Bora", "1988"}, Measures: []float64{3}}}); err != nil {
		t.Fatal(err)
	}
	if n := eng.Dataset().NumRows(); n != 1 {
		t.Errorf("rows after 1988 append = %d, want 1", n)
	}
}

func TestIngestOptionErrors(t *testing.T) {
	csvPath := writeTestCSV(t)
	cases := []struct {
		name string
		opts []reptile.Option
		want string
	}{
		{"negative retention",
			[]reptile.Option{reptile.WithRetention(-time.Hour, "year")}, "positive window"},
		{"retention without dim",
			[]reptile.Option{reptile.WithRetention(time.Hour, "")}, "time dimension"},
		{"retention on unknown dim",
			[]reptile.Option{reptile.WithRetention(time.Hour, "epoch")}, "epoch"},
		{"wal with mmap",
			[]reptile.Option{reptile.WithWAL(""), reptile.WithMappedIO()}, "incompatible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]reptile.Option{
				reptile.WithMeasures("severity"),
				reptile.WithHierarchies(testHierarchies),
			}, tc.opts...)
			_, err := reptile.Open(csvPath, opts...)
			if err == nil {
				t.Fatal("Open succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
