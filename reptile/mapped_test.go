package reptile_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/reptile"
)

// saveSnapshot opens the drought CSV and persists it as a .rst, optionally
// sharded, returning the snapshot path.
func saveSnapshot(t *testing.T, shards int) string {
	t.Helper()
	opts := []reptile.Option{
		reptile.WithMeasures("severity"),
		reptile.WithHierarchies(testHierarchies),
		reptile.WithEMIterations(4),
	}
	if shards >= 2 {
		opts = append(opts, reptile.WithShards(shards))
	}
	eng, err := reptile.Open(writeTestCSV(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "drought.rst")
	if _, err := eng.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestWithMappedIOMatchesEager reopens saved snapshots — plain and
// partitioned — with and without WithMappedIO and asserts byte-identical
// recommendations through the public SDK.
func TestWithMappedIOMatchesEager(t *testing.T) {
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			path := saveSnapshot(t, shards)
			eager, err := reptile.Open(path, reptile.WithEMIterations(4))
			if err != nil {
				t.Fatal(err)
			}
			defer eager.Close()
			mapped, err := reptile.Open(path, reptile.WithEMIterations(4), reptile.WithMappedIO())
			if err != nil {
				t.Fatal(err)
			}
			defer mapped.Close()
			if mapped.Shards() != eager.Shards() {
				t.Fatalf("mapped engine has %d shards, eager %d", mapped.Shards(), eager.Shards())
			}
			want := recommendJSON(t, eager)
			got := recommendJSON(t, mapped)
			if !bytes.Equal(got, want) {
				t.Errorf("mapped recommendation differs from eager:\nmapped: %.400s\neager:  %.400s", got, want)
			}
			if err := mapped.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWithMappedIOOptionErrors pins the surfaces that cannot serve mapped:
// CSV paths and in-memory datasets.
func TestWithMappedIOOptionErrors(t *testing.T) {
	if _, err := reptile.Open(writeTestCSV(t),
		reptile.WithMeasures("severity"),
		reptile.WithHierarchies(testHierarchies),
		reptile.WithMappedIO(),
	); err == nil || !strings.Contains(err.Error(), "WithMappedIO") {
		t.Errorf("CSV + WithMappedIO: err = %v, want a WithMappedIO error", err)
	}
	ds := reptile.NewDataset("d", []string{"a"}, []string{"m"}, nil)
	ds.AppendRowVals([]string{"x"}, []float64{1})
	if _, err := reptile.New(ds, reptile.WithMappedIO()); err == nil || !strings.Contains(err.Error(), "WithMappedIO") {
		t.Errorf("New + WithMappedIO: err = %v, want a WithMappedIO error", err)
	}
}

// TestMappedServesLargerThanHeapBudget is the flat-residency end-to-end
// test: persist a dataset whose eager column payloads dominate its heap
// cost, then show the mapped open plus a full Recommend stays an order of
// magnitude under the eager open's heap growth while answering byte-
// identically. runtime.ReadMemStats deltas stand in for RSS: mapped columns
// live in the page cache, so live-heap growth is the SDK's own footprint.
func TestMappedServesLargerThanHeapBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-budget e2e is not short")
	}
	const rows = 200_000
	ds := datasets.GenerateAbsentee(1, rows)
	path := filepath.Join(t.TempDir(), "absentee.rst")
	{
		eng, err := reptile.New(ds, reptile.WithEMIterations(2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	ds = nil

	heapDelta := func(f func()) int64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		f()
		runtime.GC()
		runtime.ReadMemStats(&after)
		return int64(after.HeapAlloc) - int64(before.HeapAlloc)
	}

	var eagerJSON, mappedJSON []byte
	run := func(opts ...reptile.Option) (*reptile.Engine, []byte) {
		opts = append(opts, reptile.WithEMIterations(2), reptile.WithWorkers(1))
		eng, err := reptile.Open(path, opts...)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := eng.NewSession(nil)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := sess.Complain("agg=count measure=one dir=high")
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		return eng, b
	}

	var eagerEng, mappedEng *reptile.Engine
	eagerBudget := heapDelta(func() { eagerEng, eagerJSON = run() })
	mappedCost := heapDelta(func() { mappedEng, mappedJSON = run(reptile.WithMappedIO()) })
	defer eagerEng.Close()
	defer mappedEng.Close()

	if !bytes.Equal(mappedJSON, eagerJSON) {
		t.Errorf("mapped recommendation differs from eager:\nmapped: %.300s\neager:  %.300s", mappedJSON, eagerJSON)
	}
	// The absentee schema holds 4 dims + 1 measure: eager columns alone cost
	// rows × (4·4 + 8) = 24 bytes/row. Anything near that scale on the
	// mapped side means a column was materialized.
	columnBytes := int64(rows) * 24
	if eagerBudget < columnBytes/2 {
		t.Fatalf("eager heap budget %d implausibly small for %d column bytes; fixture broken", eagerBudget, columnBytes)
	}
	if mappedCost > eagerBudget/10 {
		t.Errorf("mapped open+recommend grew the heap by %d bytes, want ≤ eager budget %d / 10", mappedCost, eagerBudget)
	}

	// Flat growth under repeated queries: more recommendations over the
	// mapped engine must not accrete per-row state.
	sess, err := mappedEng.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	steady := heapDelta(func() {
		for i := 0; i < 3; i++ {
			if _, err := sess.Complain("agg=count measure=one dir=high"); err != nil {
				t.Fatal(err)
			}
		}
	})
	if steady > columnBytes/10 {
		t.Errorf("steady-state recommendations grew the heap by %d bytes, want ≪ %d column bytes", steady, columnBytes)
	}
}
