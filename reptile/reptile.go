// Package reptile is the public SDK of this Reptile reproduction (Huang &
// Wu, "Reptile: Aggregation-level Explanations for Hierarchical Data",
// SIGMOD 2022): a stable facade over the engine, data, and storage layers
// that makes the explanation engine embeddable without importing anything
// under internal/.
//
// The core loop is open → session → complain → recommend:
//
//	eng, err := reptile.Open("survey.csv",
//	        reptile.WithMeasures("severity"),
//	        reptile.WithHierarchies("geo:district,village;time:year"),
//	        reptile.WithWorkers(4))
//	if err != nil { ... }
//	sess, err := eng.NewSession([]string{"district", "year"})
//	if err != nil { ... }
//	rec, err := sess.Complain(`agg=std measure=severity dir=high district=Ofla year=1986`)
//	if err != nil { ... }
//	fmt.Println(rec.Best.Hierarchy, rec.Best.Attr) // the recommended drill-down
//
// Open loads either a CSV file (schema given by WithMeasures and
// WithHierarchies) or a dictionary-encoded .rst snapshot (schema carried by
// the file; see Engine.Save). In-memory datasets built with NewDataset run
// through New. Engines are safe for concurrent use; sessions hold one
// analyst's drill-down state.
//
// The same engine is served over HTTP by cmd/reptiled; reptile/api defines
// the shared v1 wire protocol and reptile/client is the native Go client.
// Demo datasets for the examples live in reptile/sampledata.
package reptile

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/shard"
	"repro/internal/store"
)

// config collects everything the functional options can set.
type config struct {
	name        string
	measures    []string
	hierarchies []Hierarchy
	buildCube   bool
	shards      int
	shardKey    string
	mappedIO    bool
	core        core.Options
}

// Option configures Open and New.
type Option func(*config)

// WithWorkers bounds the evaluation worker pool of each Recommend call.
// 0 (the default) selects the number of CPUs; 1 forces the sequential path.
// Parallel evaluation is deterministic: it produces the same recommendation
// as a single worker.
func WithWorkers(n int) Option { return func(c *config) { c.core.Workers = n } }

// WithEMIterations sets the EM iterations per model fit (default 20, the
// paper's setting).
func WithEMIterations(n int) Option { return func(c *config) { c.core.EMIterations = n } }

// WithTopK bounds the groups reported per hierarchy (0 = all).
func WithTopK(k int) Option { return func(c *config) { c.core.TopK = k } }

// WithTrainer selects the model-training backend (default TrainerAuto).
func WithTrainer(t Trainer) Option { return func(c *config) { c.core.Trainer = t } }

// WithRandomEffects selects the random-effects design (default ZAuto).
func WithRandomEffects(re RandomEffects) Option { return func(c *config) { c.core.RandomEffects = re } }

// WithAux attaches auxiliary datasets for featurization: each aux table is
// joined on its JoinAttr and its measure becomes a model feature.
func WithAux(aux ...Aux) Option {
	return func(c *config) { c.core.Aux = append(c.core.Aux, aux...) }
}

// WithGroupFeatures attaches multi-attribute (per-group) features such as
// temporal lags (LagFeature) or multi-column aux joins (AuxGroupFeature).
// Their presence forces the naive trainer.
func WithGroupFeatures(gfs ...GroupFeature) Option {
	return func(c *config) { c.core.GroupFeatures = append(c.core.GroupFeatures, gfs...) }
}

// WithExcludeFromZ names features excluded from the random-effects design.
func WithExcludeFromZ(names ...string) Option {
	return func(c *config) { c.core.ExcludeFromZ = append(c.core.ExcludeFromZ, names...) }
}

// WithMeasures names the CSV columns parsed as numeric measures. Required
// when opening a CSV; must be left unset when opening a .rst snapshot, which
// carries its own schema.
func WithMeasures(names ...string) Option {
	return func(c *config) { c.measures = append(c.measures, names...) }
}

// WithHierarchies declares the dataset's hierarchies in the compact notation
// shared with the CLI and the server, e.g.
// "geo:region,district,village;time:year" (attributes least to most
// specific). Required when opening a CSV; must be left unset for .rst.
func WithHierarchies(spec string) Option {
	return func(c *config) {
		hs, err := data.ParseHierarchySpec(spec)
		if err != nil {
			// Options cannot return errors; buildConfig recovers this panic
			// and surfaces it as Open/New's error.
			panic(err)
		}
		c.hierarchies = append(c.hierarchies, hs...)
	}
}

// WithHierarchyList declares the hierarchies as structured values instead of
// the compact spec notation.
func WithHierarchyList(hs ...Hierarchy) Option {
	return func(c *config) { c.hierarchies = append(c.hierarchies, hs...) }
}

// WithName sets the dataset name recorded in the engine (and in snapshots
// written by Engine.Save). It defaults to the opened path. Only meaningful
// when opening a CSV; .rst snapshots and in-memory datasets already carry
// their name, and renaming them is rejected.
func WithName(name string) Option { return func(c *config) { c.name = name } }

// WithCube materializes the hierarchy-rollup cube when the dataset is
// opened: group-bys over hierarchy prefixes are then answered from
// precomputed cells instead of row scans. Snapshots that already carry a
// stored cube keep it without this option. On a sharded engine, every shard
// gets its own cube.
func WithCube() Option { return func(c *config) { c.buildCube = true } }

// WithShards partitions the dataset into n shards (n ≥ 2) and serves it
// through the sharded scatter-gather engine: every aggregation fans out to
// per-shard workers and the partial statistics merge before any model fit.
// Recommendations are byte-identical to the unsharded engine whenever every
// evaluated grouping includes the shard key's attribute (which holds for all
// drill-downs into the key's hierarchy) or the measures are integer-valued.
// 0 (the default) and 1 serve unsharded. Partitioned .rst files carry their
// own shard topology and reject this option.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithShardKey selects the dimension rows are partitioned on — it must be
// the root attribute of one of the dataset's hierarchies, and defaults to
// the first hierarchy's root. Requires WithShards.
func WithShardKey(dim string) Option { return func(c *config) { c.shardKey = dim } }

// WithMappedIO serves the opened .rst snapshot (partitioned or not) out of a
// memory-mapped file instead of decoding its columns onto the heap: residency
// stays O(dictionaries + cube) rather than O(rows), so snapshots larger than
// RAM serve with flat RSS, at the price of page-cache reads on cold columns.
// Recommendations are byte-identical to an eager open. Version-1 snapshot
// files fall back to an eager load. Only .rst paths accept the option — CSVs
// are parsed into memory and have no column payloads to map. Call
// Engine.Close to release the mapping.
func WithMappedIO() Option { return func(c *config) { c.mappedIO = true } }

// Engine answers complaint-based drill-down queries over one dataset. It
// wraps the core explanation engine behind a stable API and is safe for
// concurrent use: many sessions may Recommend against it at once.
type Engine struct {
	eng  *core.Engine
	snap *store.Snapshot // non-nil when opened from an unsharded snapshot
	set  *shard.Set      // non-nil when serving sharded
}

// Open loads a dataset from path and builds an engine over it. A path ending
// in .rst loads a dictionary-encoded binary snapshot (written by Engine.Save
// or the reptile CLI's convert subcommand), which carries its own measures
// and hierarchies; any other path is parsed as CSV using the schema given by
// WithMeasures and WithHierarchies.
func Open(path string, opts ...Option) (*Engine, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".rst") {
		if len(cfg.measures) > 0 || len(cfg.hierarchies) > 0 || cfg.name != "" {
			return nil, fmt.Errorf("reptile: a .rst snapshot carries its own name, measures and hierarchies; drop WithName/WithMeasures/WithHierarchies")
		}
		sharded, err := store.IsShardedFile(path)
		if err != nil {
			return nil, err
		}
		if sharded {
			if cfg.shards != 0 || cfg.shardKey != "" {
				return nil, fmt.Errorf("reptile: a partitioned .rst snapshot carries its own shard topology; drop WithShards/WithShardKey")
			}
			open := shard.Open
			if cfg.mappedIO {
				open = shard.OpenMapped
			}
			set, err := open(path)
			if err != nil {
				return nil, err
			}
			return fromSet(set, cfg)
		}
		openFile := store.OpenFile
		if cfg.mappedIO {
			openFile = store.OpenMappedFile
		}
		snap, err := openFile(path)
		if err != nil {
			return nil, err
		}
		return fromSnapshot(snap, cfg)
	}
	if cfg.mappedIO {
		return nil, fmt.Errorf("reptile: WithMappedIO needs a .rst snapshot path; %q is parsed as CSV into memory", path)
	}
	if len(cfg.measures) == 0 {
		return nil, fmt.Errorf("reptile: opening CSV %q needs WithMeasures", path)
	}
	if len(cfg.hierarchies) == 0 {
		return nil, fmt.Errorf("reptile: opening CSV %q needs WithHierarchies", path)
	}
	name := cfg.name
	if name == "" {
		name = path
	}
	ds, err := data.ReadCSVFile(path, name, cfg.measures, cfg.hierarchies)
	if err != nil {
		return nil, err
	}
	// Dictionary-encode through a snapshot so the engine runs over
	// code-backed columns (and the dataset can be saved or cubed for free).
	return fromSnapshot(store.FromDataset(ds), cfg)
}

// New builds an engine over an in-memory dataset (see NewDataset, ReadCSV).
// The dataset must not be mutated afterwards. WithMeasures and
// WithHierarchies are not accepted here: the dataset already carries its
// schema.
func New(ds *Dataset, opts ...Option) (*Engine, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if len(cfg.measures) > 0 || len(cfg.hierarchies) > 0 || cfg.name != "" {
		return nil, fmt.Errorf("reptile: the dataset already carries its name and schema; drop WithName/WithMeasures/WithHierarchies")
	}
	if cfg.mappedIO {
		return nil, fmt.Errorf("reptile: WithMappedIO needs a .rst snapshot path; the dataset is already in memory")
	}
	if cfg.buildCube || cfg.shards >= 2 {
		return fromSnapshot(store.FromDataset(ds), cfg)
	}
	eng, err := core.NewEngine(ds, cfg.core)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng}, nil
}

// fromSnapshot builds the engine over a snapshot's code-backed dataset,
// partitioning it first when sharding was requested and materializing the
// rollup cube(s) when requested.
func fromSnapshot(snap *store.Snapshot, cfg *config) (*Engine, error) {
	if cfg.shards >= 2 {
		set, err := shard.Partition(snap, cfg.shards, cfg.shardKey)
		if err != nil {
			return nil, err
		}
		return fromSet(set, cfg)
	}
	if cfg.buildCube {
		if err := snap.BuildCube(); err != nil {
			return nil, err
		}
	}
	ds, err := snap.Dataset()
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(ds, cfg.core)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng, snap: snap}, nil
}

// fromSet builds the sharded scatter-gather engine over a partitioned set,
// materializing per-shard cubes when requested.
func fromSet(set *shard.Set, cfg *config) (*Engine, error) {
	if cfg.buildCube {
		if err := set.BuildCubes(); err != nil {
			return nil, err
		}
	}
	eng, err := set.Engine(cfg.core)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng, set: set}, nil
}

// buildConfig applies the options, converting option panics (bad hierarchy
// specs) into errors.
func buildConfig(opts []Option) (cfg *config, err error) {
	cfg = &config{}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				cfg, err = nil, e
				return
			}
			panic(r)
		}
	}()
	for _, opt := range opts {
		opt(cfg)
	}
	if cfg.shards < 0 {
		return nil, fmt.Errorf("reptile: WithShards needs a non-negative count, got %d", cfg.shards)
	}
	if cfg.shardKey != "" && cfg.shards < 2 {
		return nil, fmt.Errorf("reptile: WithShardKey needs WithShards(n) with n >= 2")
	}
	return cfg, nil
}

// NewSession starts a drill-down session with the given initial group-by
// attributes (each hierarchy's attributes must form a prefix; nil starts at
// the root). Sessions cache aggregations and factorised representations per
// drill state, so repeated complaints are cheap.
func (e *Engine) NewSession(groupBy []string) (*Session, error) {
	cs, err := e.eng.NewSession(groupBy)
	if err != nil {
		return nil, err
	}
	return &Session{s: cs}, nil
}

// Dataset returns the engine's dataset. Callers must treat it as immutable.
// On a sharded engine it returns the schema dataset — the first shard's, by
// convention — whose rows are that shard's only; use sharded sessions (or
// Save and reopen) rather than scanning it.
func (e *Engine) Dataset() *Dataset { return e.eng.Dataset() }

// Workers returns the resolved evaluation worker-pool size.
func (e *Engine) Workers() int { return e.eng.Workers() }

// Shards returns the number of partitions the engine serves from, 0 when
// unsharded.
func (e *Engine) Shards() int {
	if e.set == nil {
		return 0
	}
	return e.set.N()
}

// ShardKey returns the dimension the engine's shards are partitioned on,
// "" when unsharded.
func (e *Engine) ShardKey() string {
	if e.set == nil {
		return ""
	}
	return e.set.Key
}

// Close releases the memory mapping of an engine opened with WithMappedIO.
// It is a no-op on eagerly loaded engines and safe to call on every Engine,
// so `defer eng.Close()` is always correct. After Close, sessions over a
// mapped engine must not be used.
func (e *Engine) Close() error {
	if e.set != nil {
		return e.set.Close()
	}
	if e.snap != nil {
		return e.snap.Close()
	}
	return nil
}

// SnapshotInfo describes a snapshot written by Engine.Save.
type SnapshotInfo struct {
	Rows     int
	Dims     int
	Measures int
	// Shards is the partition count of a partitioned snapshot (0 when the
	// snapshot is a plain, unsharded one).
	Shards int
	// CubeLevels and CubeCells describe the materialized rollup cube
	// (0/0 when the snapshot carries none; cells sum across shards).
	CubeLevels int
	CubeCells  int
}

// Save persists the engine's dataset as a dictionary-encoded .rst snapshot
// at path. A sharded engine writes a partitioned snapshot (per-shard column
// sections sharing one dictionary set) that Open serves sharded again; an
// unsharded engine writes a plain snapshot. With WithCube() among the
// engine's open options (or when the engine was opened from a cube-carrying
// snapshot), plain snapshots store the cube too, so later Opens skip both
// CSV parsing and cube building. Loading the written file yields
// byte-identical recommendations to this engine.
func (e *Engine) Save(path string) (*SnapshotInfo, error) {
	if e.set != nil {
		if err := e.set.WriteFile(path); err != nil {
			return nil, err
		}
		schema := e.set.Snaps[0]
		info := &SnapshotInfo{Rows: e.set.TotalRows(), Dims: len(schema.Dims), Measures: len(schema.Measures), Shards: e.set.N()}
		for _, sn := range e.set.Snaps {
			if c := sn.Cube(); c != nil {
				info.CubeLevels = c.NumLevels()
				info.CubeCells += c.NumCells()
			}
		}
		return info, nil
	}
	snap := e.snap
	if snap == nil {
		snap = store.FromDataset(e.eng.Dataset())
	}
	if err := snap.WriteFile(path); err != nil {
		return nil, err
	}
	info := &SnapshotInfo{Rows: snap.NumRows(), Dims: len(snap.Dims), Measures: len(snap.Measures)}
	if c := snap.Cube(); c != nil {
		info.CubeLevels, info.CubeCells = c.NumLevels(), c.NumCells()
	}
	return info, nil
}

// Session holds one analyst's drill-down state over an engine. Recommend and
// Drill are safe to call concurrently; a Recommend racing a Drill evaluates
// at either drill state, never a torn mix.
type Session struct {
	s *core.Session
}

// Recommend solves the complaint-based drill-down problem: for every
// hierarchy with a remaining attribute it drills down, estimates each
// group's expected statistics with a multi-level model trained on the
// parallel groups, and ranks the groups by the repaired complaint value.
func (s *Session) Recommend(c Complaint) (*Recommendation, error) { return s.s.Recommend(c) }

// Complain parses spec with ParseComplaint and evaluates it — the one-line
// form of Recommend for the compact complaint notation.
func (s *Session) Complain(spec string) (*Recommendation, error) {
	c, err := core.ParseComplaint(spec)
	if err != nil {
		return nil, err
	}
	return s.s.Recommend(c)
}

// Drill accepts a recommendation: it extends the named hierarchy's group-by
// prefix by one attribute.
func (s *Session) Drill(hierarchy string) error { return s.s.Drill(hierarchy) }

// GroupBy returns the current group-by attributes in canonical order
// (hierarchy by hierarchy, least to most specific).
func (s *Session) GroupBy() []string { return s.s.GroupBy() }

// StateKey returns a stable encoding of the session's drill state; it
// changes on every Drill. (StateKey, Complaint.Key) is a sound
// recommendation cache key.
func (s *Session) StateKey() string { return s.s.StateKey() }
