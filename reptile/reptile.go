// Package reptile is the public SDK of this Reptile reproduction (Huang &
// Wu, "Reptile: Aggregation-level Explanations for Hierarchical Data",
// SIGMOD 2022): a stable facade over the engine, data, and storage layers
// that makes the explanation engine embeddable without importing anything
// under internal/.
//
// The core loop is open → session → complain → recommend:
//
//	eng, err := reptile.Open("survey.csv",
//	        reptile.WithMeasures("severity"),
//	        reptile.WithHierarchies("geo:district,village;time:year"),
//	        reptile.WithWorkers(4))
//	if err != nil { ... }
//	sess, err := eng.NewSession([]string{"district", "year"})
//	if err != nil { ... }
//	rec, err := sess.Complain(`agg=std measure=severity dir=high district=Ofla year=1986`)
//	if err != nil { ... }
//	fmt.Println(rec.Best.Hierarchy, rec.Best.Attr) // the recommended drill-down
//
// Open loads either a CSV file (schema given by WithMeasures and
// WithHierarchies) or a dictionary-encoded .rst snapshot (schema carried by
// the file; see Engine.Save). In-memory datasets built with NewDataset run
// through New. Engines are safe for concurrent use; sessions hold one
// analyst's drill-down state.
//
// The same engine is served over HTTP by cmd/reptiled; reptile/api defines
// the shared v1 wire protocol and reptile/client is the native Go client.
// Demo datasets for the examples live in reptile/sampledata.
package reptile

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/wal"
)

// config collects everything the functional options can set.
type config struct {
	name        string
	measures    []string
	hierarchies []Hierarchy
	buildCube   bool
	shards      int
	shardKey    string
	mappedIO    bool
	useWAL      bool
	walDir      string
	retention   time.Duration
	retDim      string
	core        core.Options
}

// Option configures Open and New.
type Option func(*config)

// WithWorkers bounds the evaluation worker pool of each Recommend call.
// 0 (the default) selects the number of CPUs; 1 forces the sequential path.
// Parallel evaluation is deterministic: it produces the same recommendation
// as a single worker.
func WithWorkers(n int) Option { return func(c *config) { c.core.Workers = n } }

// WithEMIterations sets the EM iterations per model fit (default 20, the
// paper's setting).
func WithEMIterations(n int) Option { return func(c *config) { c.core.EMIterations = n } }

// WithTopK bounds the groups reported per hierarchy (0 = all).
func WithTopK(k int) Option { return func(c *config) { c.core.TopK = k } }

// WithTrainer selects the model-training backend (default TrainerAuto).
func WithTrainer(t Trainer) Option { return func(c *config) { c.core.Trainer = t } }

// WithRandomEffects selects the random-effects design (default ZAuto).
func WithRandomEffects(re RandomEffects) Option { return func(c *config) { c.core.RandomEffects = re } }

// WithAux attaches auxiliary datasets for featurization: each aux table is
// joined on its JoinAttr and its measure becomes a model feature.
func WithAux(aux ...Aux) Option {
	return func(c *config) { c.core.Aux = append(c.core.Aux, aux...) }
}

// WithGroupFeatures attaches multi-attribute (per-group) features such as
// temporal lags (LagFeature) or multi-column aux joins (AuxGroupFeature).
// Their presence forces the naive trainer.
func WithGroupFeatures(gfs ...GroupFeature) Option {
	return func(c *config) { c.core.GroupFeatures = append(c.core.GroupFeatures, gfs...) }
}

// WithExcludeFromZ names features excluded from the random-effects design.
func WithExcludeFromZ(names ...string) Option {
	return func(c *config) { c.core.ExcludeFromZ = append(c.core.ExcludeFromZ, names...) }
}

// WithMeasures names the CSV columns parsed as numeric measures. Required
// when opening a CSV; must be left unset when opening a .rst snapshot, which
// carries its own schema.
func WithMeasures(names ...string) Option {
	return func(c *config) { c.measures = append(c.measures, names...) }
}

// WithHierarchies declares the dataset's hierarchies in the compact notation
// shared with the CLI and the server, e.g.
// "geo:region,district,village;time:year" (attributes least to most
// specific). Required when opening a CSV; must be left unset for .rst.
func WithHierarchies(spec string) Option {
	return func(c *config) {
		hs, err := data.ParseHierarchySpec(spec)
		if err != nil {
			// Options cannot return errors; buildConfig recovers this panic
			// and surfaces it as Open/New's error.
			panic(err)
		}
		c.hierarchies = append(c.hierarchies, hs...)
	}
}

// WithHierarchyList declares the hierarchies as structured values instead of
// the compact spec notation.
func WithHierarchyList(hs ...Hierarchy) Option {
	return func(c *config) { c.hierarchies = append(c.hierarchies, hs...) }
}

// WithName sets the dataset name recorded in the engine (and in snapshots
// written by Engine.Save). It defaults to the opened path. Only meaningful
// when opening a CSV; .rst snapshots and in-memory datasets already carry
// their name, and renaming them is rejected.
func WithName(name string) Option { return func(c *config) { c.name = name } }

// WithCube materializes the hierarchy-rollup cube when the dataset is
// opened: group-bys over hierarchy prefixes are then answered from
// precomputed cells instead of row scans. Snapshots that already carry a
// stored cube keep it without this option. On a sharded engine, every shard
// gets its own cube.
func WithCube() Option { return func(c *config) { c.buildCube = true } }

// WithShards partitions the dataset into n shards (n ≥ 2) and serves it
// through the sharded scatter-gather engine: every aggregation fans out to
// per-shard workers and the partial statistics merge before any model fit.
// Recommendations are byte-identical to the unsharded engine whenever every
// evaluated grouping includes the shard key's attribute (which holds for all
// drill-downs into the key's hierarchy) or the measures are integer-valued.
// 0 (the default) and 1 serve unsharded. Partitioned .rst files carry their
// own shard topology and reject this option.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithShardKey selects the dimension rows are partitioned on — it must be
// the root attribute of one of the dataset's hierarchies, and defaults to
// the first hierarchy's root. Requires WithShards.
func WithShardKey(dim string) Option { return func(c *config) { c.shardKey = dim } }

// WithMappedIO serves the opened .rst snapshot (partitioned or not) out of a
// memory-mapped file instead of decoding its columns onto the heap: residency
// stays O(dictionaries + cube) rather than O(rows), so snapshots larger than
// RAM serve with flat RSS, at the price of page-cache reads on cold columns.
// Recommendations are byte-identical to an eager open. Version-1 snapshot
// files fall back to an eager load. Only .rst paths accept the option — CSVs
// are parsed into memory and have no column payloads to map. Call
// Engine.Close to release the mapping.
func WithMappedIO() Option { return func(c *config) { c.mappedIO = true } }

// WithWAL attaches a write-ahead log to the engine: every Append commits its
// rows to <dir>/<dataset>.wal (fsynced) before the in-memory rebuild, and
// reopening the same dataset with the same directory replays the log, so
// appended rows survive a crash between Append and Save. Engine.Save
// checkpoints the full state into the .rst file and truncates the log; call
// Engine.Close to release the log handle. An empty dir selects the current
// directory. Incompatible with WithMappedIO (mapped engines reject appends).
func WithWAL(dir string) Option {
	return func(c *config) {
		c.useWAL = true
		c.walDir = dir
	}
}

// WithRetention bounds the engine's history to a time window: after every
// Append, rows whose event time on dim falls more than window behind the
// dataset's newest event are dropped into a successor version. Values on dim
// parse as RFC 3339 timestamps down to bare years ("2026-08-07", "2026");
// rows with unparsable values are kept. The horizon is event-time based, not
// wall-clock, so an idle engine never loses data.
func WithRetention(window time.Duration, dim string) Option {
	return func(c *config) {
		c.retention = window
		c.retDim = dim
	}
}

// Row is one appended row: dimension values in the dataset's dimension
// order and measure values in measure order.
type Row = store.Row

// Engine answers complaint-based drill-down queries over one dataset. It
// wraps the core explanation engine behind a stable API and is safe for
// concurrent use: many sessions may Recommend against it at once, and
// Append hot-swaps the served dataset without disturbing them.
type Engine struct {
	mu   sync.Mutex
	eng  *core.Engine
	snap *store.Snapshot // non-nil when opened from an unsharded snapshot
	set  *shard.Set      // non-nil when serving sharded

	// Ingestion state: the engine options appends rebuild with, the warm
	// dictionary builder (unsharded), the optional write-ahead log, and the
	// optional retention window.
	opts      core.Options
	builder   *store.Builder
	log       *wal.WAL
	retention time.Duration
	retDim    string
	closed    bool
}

// Open loads a dataset from path and builds an engine over it. A path ending
// in .rst loads a dictionary-encoded binary snapshot (written by Engine.Save
// or the reptile CLI's convert subcommand), which carries its own measures
// and hierarchies; any other path is parsed as CSV using the schema given by
// WithMeasures and WithHierarchies.
func Open(path string, opts ...Option) (*Engine, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".rst") {
		if len(cfg.measures) > 0 || len(cfg.hierarchies) > 0 || cfg.name != "" {
			return nil, fmt.Errorf("reptile: a .rst snapshot carries its own name, measures and hierarchies; drop WithName/WithMeasures/WithHierarchies")
		}
		sharded, err := store.IsShardedFile(path)
		if err != nil {
			return nil, err
		}
		if sharded {
			if cfg.shards != 0 || cfg.shardKey != "" {
				return nil, fmt.Errorf("reptile: a partitioned .rst snapshot carries its own shard topology; drop WithShards/WithShardKey")
			}
			open := shard.Open
			if cfg.mappedIO {
				open = shard.OpenMapped
			}
			set, err := open(path)
			if err != nil {
				return nil, err
			}
			var log *wal.WAL
			if cfg.useWAL {
				if log, set, err = replaySetLog(cfg.walDir, set); err != nil {
					return nil, err
				}
			}
			return fromSet(set, cfg, log)
		}
		openFile := store.OpenFile
		if cfg.mappedIO {
			openFile = store.OpenMappedFile
		}
		snap, err := openFile(path)
		if err != nil {
			return nil, err
		}
		return fromSnapshot(snap, cfg)
	}
	if cfg.mappedIO {
		return nil, fmt.Errorf("reptile: WithMappedIO needs a .rst snapshot path; %q is parsed as CSV into memory", path)
	}
	if len(cfg.measures) == 0 {
		return nil, fmt.Errorf("reptile: opening CSV %q needs WithMeasures", path)
	}
	if len(cfg.hierarchies) == 0 {
		return nil, fmt.Errorf("reptile: opening CSV %q needs WithHierarchies", path)
	}
	name := cfg.name
	if name == "" {
		name = path
	}
	ds, err := data.ReadCSVFile(path, name, cfg.measures, cfg.hierarchies)
	if err != nil {
		return nil, err
	}
	// Dictionary-encode through a snapshot so the engine runs over
	// code-backed columns (and the dataset can be saved or cubed for free).
	return fromSnapshot(store.FromDataset(ds), cfg)
}

// New builds an engine over an in-memory dataset (see NewDataset, ReadCSV).
// The dataset must not be mutated afterwards. WithMeasures and
// WithHierarchies are not accepted here: the dataset already carries its
// schema.
func New(ds *Dataset, opts ...Option) (*Engine, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if len(cfg.measures) > 0 || len(cfg.hierarchies) > 0 || cfg.name != "" {
		return nil, fmt.Errorf("reptile: the dataset already carries its name and schema; drop WithName/WithMeasures/WithHierarchies")
	}
	if cfg.mappedIO {
		return nil, fmt.Errorf("reptile: WithMappedIO needs a .rst snapshot path; the dataset is already in memory")
	}
	if cfg.buildCube || cfg.shards >= 2 || cfg.useWAL || cfg.retention > 0 {
		return fromSnapshot(store.FromDataset(ds), cfg)
	}
	eng, err := core.NewEngine(ds, cfg.core)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng}, nil
}

// fromSnapshot builds the engine over a snapshot's code-backed dataset:
// write-ahead-log replay first (so recovered rows shard, cube and serve like
// any others), then partitioning when sharding was requested, a retention
// pass, and the rollup cube when requested.
func fromSnapshot(snap *store.Snapshot, cfg *config) (*Engine, error) {
	var log *wal.WAL
	if cfg.useWAL {
		var err error
		if log, snap, err = replaySnapshotLog(cfg.walDir, snap); err != nil {
			return nil, err
		}
	}
	if cfg.shards >= 2 {
		set, err := shard.Partition(snap, cfg.shards, cfg.shardKey)
		if err != nil {
			return nil, closeLogOn(log, err)
		}
		return fromSet(set, cfg, log)
	}
	if cfg.retention > 0 {
		next, _, _, err := store.Retain(snap, cfg.retDim, cfg.retention)
		if err != nil {
			return nil, closeLogOn(log, err)
		}
		snap = next
	}
	if cfg.buildCube {
		if err := snap.BuildCube(); err != nil {
			return nil, closeLogOn(log, err)
		}
	}
	ds, err := snap.Dataset()
	if err != nil {
		return nil, closeLogOn(log, err)
	}
	eng, err := core.NewEngine(ds, cfg.core)
	if err != nil {
		return nil, closeLogOn(log, err)
	}
	return &Engine{
		eng: eng, snap: snap, opts: cfg.core, builder: store.NewBuilder(snap),
		log: log, retention: cfg.retention, retDim: cfg.retDim,
	}, nil
}

// fromSet builds the sharded scatter-gather engine over a partitioned set,
// applying the retention window and materializing per-shard cubes when
// requested. log, when non-nil, is the already-replayed write-ahead log the
// engine keeps appending to.
func fromSet(set *shard.Set, cfg *config, log *wal.WAL) (*Engine, error) {
	if cfg.retention > 0 {
		next, _, _, err := set.Retain(cfg.retDim, cfg.retention)
		if err != nil {
			return nil, closeLogOn(log, err)
		}
		set = next
	}
	if cfg.buildCube {
		if err := set.BuildCubes(); err != nil {
			return nil, closeLogOn(log, err)
		}
	}
	eng, err := set.Engine(cfg.core)
	if err != nil {
		return nil, closeLogOn(log, err)
	}
	return &Engine{
		eng: eng, set: set, opts: cfg.core,
		log: log, retention: cfg.retention, retDim: cfg.retDim,
	}, nil
}

// closeLogOn releases a just-opened log when the rest of the open fails.
func closeLogOn(log *wal.WAL, err error) error {
	if log != nil {
		log.Close()
	}
	return err
}

// logPath places a dataset's log inside dir, mapping file-hostile runes in
// the name (CSV paths contain separators) to '_'.
func logPath(dir, name string) string {
	if dir == "" {
		dir = "."
	}
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if strings.Trim(b.String(), ".") == "" {
		b.WriteString("dataset")
	}
	return filepath.Join(dir, b.String()+".wal")
}

// replaySnapshotLog opens the dataset's log and folds its surviving batches
// into the snapshot — the whole backlog in one rebuild when it is clean,
// batch by batch (skipping poisoned ones) when it is not.
func replaySnapshotLog(dir string, snap *store.Snapshot) (*wal.WAL, *store.Snapshot, error) {
	log, batches, err := wal.Open(logPath(dir, snap.Name))
	if err != nil {
		return nil, nil, err
	}
	if len(batches) == 0 {
		return log, snap, nil
	}
	var all []Row
	for _, b := range batches {
		all = append(all, b.Rows...)
	}
	if next, err := store.NewBuilder(snap).Append(all); err == nil {
		return log, next, nil
	}
	for _, b := range batches {
		if next, err := store.NewBuilder(snap).Append(b.Rows); err == nil {
			snap = next
		}
	}
	return log, snap, nil
}

// replaySetLog is replaySnapshotLog for a partitioned set.
func replaySetLog(dir string, set *shard.Set) (*wal.WAL, *shard.Set, error) {
	log, batches, err := wal.Open(logPath(dir, set.Snaps[0].Name))
	if err != nil {
		return nil, nil, err
	}
	if len(batches) == 0 {
		return log, set, nil
	}
	var all []Row
	for _, b := range batches {
		all = append(all, b.Rows...)
	}
	if next, err := set.Append(all); err == nil {
		return log, next, nil
	}
	for _, b := range batches {
		if next, err := set.Append(b.Rows); err == nil {
			set = next
		}
	}
	return log, set, nil
}

// buildConfig applies the options, converting option panics (bad hierarchy
// specs) into errors.
func buildConfig(opts []Option) (cfg *config, err error) {
	cfg = &config{}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				cfg, err = nil, e
				return
			}
			panic(r)
		}
	}()
	for _, opt := range opts {
		opt(cfg)
	}
	if cfg.shards < 0 {
		return nil, fmt.Errorf("reptile: WithShards needs a non-negative count, got %d", cfg.shards)
	}
	if cfg.shardKey != "" && cfg.shards < 2 {
		return nil, fmt.Errorf("reptile: WithShardKey needs WithShards(n) with n >= 2")
	}
	if cfg.retention < 0 {
		return nil, fmt.Errorf("reptile: WithRetention needs a positive window, got %v", cfg.retention)
	}
	if cfg.retention > 0 && cfg.retDim == "" {
		return nil, fmt.Errorf("reptile: WithRetention needs a time dimension name")
	}
	if cfg.useWAL && cfg.mappedIO {
		return nil, fmt.Errorf("reptile: WithWAL and WithMappedIO are incompatible; mapped engines reject appends")
	}
	return cfg, nil
}

// NewSession starts a drill-down session with the given initial group-by
// attributes (each hierarchy's attributes must form a prefix; nil starts at
// the root). Sessions cache aggregations and factorised representations per
// drill state, so repeated complaints are cheap.
func (e *Engine) NewSession(groupBy []string) (*Session, error) {
	cs, err := e.coreEngine().NewSession(groupBy)
	if err != nil {
		return nil, err
	}
	return &Session{s: cs}, nil
}

// coreEngine reads the current engine pointer under the lock, so sessions
// created during an Append bind to either the old or the new version, never
// a torn mix.
func (e *Engine) coreEngine() *core.Engine {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.eng
}

// Append ingests rows, hot-swapping the engine's dataset: the successor
// snapshot builds off to the side and replaces the served one atomically.
// Existing sessions keep evaluating against the version they were created on;
// new sessions see the appended rows. With WithWAL, the rows are committed to
// the log (fsynced) before the rebuild, so they survive a crash and replay on
// the next Open. With WithRetention, rows behind the updated event-time
// horizon are dropped in the same swap. Mapped engines reject appends.
func (e *Engine) Append(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("reptile: the engine is closed")
	}
	if (e.snap != nil && e.snap.Mapped()) || (e.set != nil && e.set.Snaps[0].Mapped()) {
		return fmt.Errorf("reptile: a mapped engine rejects appends; reopen eagerly to ingest")
	}
	if e.log != nil {
		if _, err := e.log.Append(rows); err != nil {
			return err
		}
	}
	if e.set != nil {
		next, err := e.set.Append(rows)
		if err != nil {
			return err
		}
		if e.retention > 0 {
			if next, _, _, err = next.Retain(e.retDim, e.retention); err != nil {
				return err
			}
		}
		eng, err := next.Engine(e.opts)
		if err != nil {
			return err
		}
		e.set, e.eng = next, eng
		return nil
	}
	if e.snap == nil {
		// Engines built straight from an in-memory dataset materialize their
		// snapshot on first append.
		e.snap = store.FromDataset(e.eng.Dataset())
	}
	if e.builder == nil {
		e.builder = store.NewBuilder(e.snap)
	}
	// Any failure below leaves the served state untouched; rewind the builder
	// so the next append builds on what sessions actually see.
	rewind := func(err error) error {
		e.builder = store.NewBuilder(e.snap)
		return err
	}
	next, err := e.builder.Append(rows)
	if err != nil {
		return rewind(err)
	}
	if e.retention > 0 {
		filtered, dropped, _, err := store.Retain(next, e.retDim, e.retention)
		if err != nil {
			return rewind(err)
		}
		if dropped > 0 {
			next = filtered
			e.builder = store.NewBuilder(next)
		}
	}
	ds, err := next.Dataset()
	if err != nil {
		return rewind(err)
	}
	eng, err := core.NewEngine(ds, e.opts)
	if err != nil {
		return rewind(err)
	}
	e.snap, e.eng = next, eng
	return nil
}

// Dataset returns the engine's dataset. Callers must treat it as immutable.
// On a sharded engine it returns the schema dataset — the first shard's, by
// convention — whose rows are that shard's only; use sharded sessions (or
// Save and reopen) rather than scanning it.
func (e *Engine) Dataset() *Dataset { return e.coreEngine().Dataset() }

// Workers returns the resolved evaluation worker-pool size.
func (e *Engine) Workers() int { return e.coreEngine().Workers() }

// Shards returns the number of partitions the engine serves from, 0 when
// unsharded.
func (e *Engine) Shards() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.set == nil {
		return 0
	}
	return e.set.N()
}

// ShardKey returns the dimension the engine's shards are partitioned on,
// "" when unsharded.
func (e *Engine) ShardKey() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.set == nil {
		return ""
	}
	return e.set.Key
}

// Close releases the engine's file-backed resources: the memory mapping of a
// WithMappedIO open and the write-ahead log of a WithWAL open (the log file
// itself stays on disk for the next Open to replay). It is a no-op on plain
// in-memory engines and safe to call on every Engine, so `defer eng.Close()`
// is always correct. After Close, sessions over a mapped engine must not be
// used and Append fails.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	var err error
	if e.log != nil {
		err = e.log.Close()
		e.log = nil
	}
	var cerr error
	if e.set != nil {
		cerr = e.set.Close()
	} else if e.snap != nil {
		cerr = e.snap.Close()
	}
	if err == nil {
		err = cerr
	}
	return err
}

// SnapshotInfo describes a snapshot written by Engine.Save.
type SnapshotInfo struct {
	Rows     int
	Dims     int
	Measures int
	// Shards is the partition count of a partitioned snapshot (0 when the
	// snapshot is a plain, unsharded one).
	Shards int
	// CubeLevels and CubeCells describe the materialized rollup cube
	// (0/0 when the snapshot carries none; cells sum across shards).
	CubeLevels int
	CubeCells  int
}

// Save persists the engine's dataset as a dictionary-encoded .rst snapshot
// at path. A sharded engine writes a partitioned snapshot (per-shard column
// sections sharing one dictionary set) that Open serves sharded again; an
// unsharded engine writes a plain snapshot. With WithCube() among the
// engine's open options (or when the engine was opened from a cube-carrying
// snapshot), plain snapshots store the cube too, so later Opens skip both
// CSV parsing and cube building. Loading the written file yields
// byte-identical recommendations to this engine.
//
// With WithWAL, a successful Save doubles as a checkpoint: the write-ahead
// log truncates (its sequence numbering continues), since every logged row is
// now captured in the .rst file. Reopen from the saved snapshot — reopening
// the original source would replay nothing and lose the appends.
func (e *Engine) Save(path string) (*SnapshotInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	info, err := e.saveLocked(path)
	if err != nil {
		return nil, err
	}
	if e.log != nil {
		if err := e.log.Reset(); err != nil {
			return nil, err
		}
	}
	return info, nil
}

func (e *Engine) saveLocked(path string) (*SnapshotInfo, error) {
	if e.set != nil {
		if err := e.set.WriteFile(path); err != nil {
			return nil, err
		}
		schema := e.set.Snaps[0]
		info := &SnapshotInfo{Rows: e.set.TotalRows(), Dims: len(schema.Dims), Measures: len(schema.Measures), Shards: e.set.N()}
		for _, sn := range e.set.Snaps {
			if c := sn.Cube(); c != nil {
				info.CubeLevels = c.NumLevels()
				info.CubeCells += c.NumCells()
			}
		}
		return info, nil
	}
	snap := e.snap
	if snap == nil {
		snap = store.FromDataset(e.eng.Dataset())
	}
	if err := snap.WriteFile(path); err != nil {
		return nil, err
	}
	info := &SnapshotInfo{Rows: snap.NumRows(), Dims: len(snap.Dims), Measures: len(snap.Measures)}
	if c := snap.Cube(); c != nil {
		info.CubeLevels, info.CubeCells = c.NumLevels(), c.NumCells()
	}
	return info, nil
}

// Session holds one analyst's drill-down state over an engine. Recommend and
// Drill are safe to call concurrently; a Recommend racing a Drill evaluates
// at either drill state, never a torn mix.
type Session struct {
	s *core.Session
}

// Recommend solves the complaint-based drill-down problem: for every
// hierarchy with a remaining attribute it drills down, estimates each
// group's expected statistics with a multi-level model trained on the
// parallel groups, and ranks the groups by the repaired complaint value.
func (s *Session) Recommend(c Complaint) (*Recommendation, error) { return s.s.Recommend(c) }

// Complain parses spec with ParseComplaint and evaluates it — the one-line
// form of Recommend for the compact complaint notation.
func (s *Session) Complain(spec string) (*Recommendation, error) {
	c, err := core.ParseComplaint(spec)
	if err != nil {
		return nil, err
	}
	return s.s.Recommend(c)
}

// Drill accepts a recommendation: it extends the named hierarchy's group-by
// prefix by one attribute.
func (s *Session) Drill(hierarchy string) error { return s.s.Drill(hierarchy) }

// GroupBy returns the current group-by attributes in canonical order
// (hierarchy by hierarchy, least to most specific).
func (s *Session) GroupBy() []string { return s.s.GroupBy() }

// StateKey returns a stable encoding of the session's drill state; it
// changes on every Drill. (StateKey, Complaint.Key) is a sound
// recommendation cache key.
func (s *Session) StateKey() string { return s.s.StateKey() }
