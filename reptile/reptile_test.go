package reptile_test

// The facade must be a zero-cost veneer: everything reachable through it
// behaves byte-identically to driving internal/core directly. These tests
// pin that down for both load paths (CSV and .rst snapshot) and for the
// option plumbing.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/reptile"
)

const testCSV = "district,village,year,severity\n" +
	"Ofla,Adishim,1986,8\nOfla,Adishim,1987,7\nOfla,Zata,1986,2\nOfla,Zata,1987,7\n" +
	"Raya,Kukufto,1986,8\nRaya,Kukufto,1987,6\nRaya,Mehoni,1986,7\nRaya,Mehoni,1987,6\n"

const testHierarchies = "geo:district,village;time:year"

const testComplaint = "agg=mean measure=severity dir=low district=Ofla year=1986"

func writeTestCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "drought.csv")
	if err := os.WriteFile(path, []byte(testCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// recommendJSON drives one complaint through a facade engine.
func recommendJSON(t *testing.T, eng *reptile.Engine) []byte {
	t.Helper()
	sess, err := eng.NewSession([]string{"district", "year"})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Complain(testComplaint)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// directJSON computes the same recommendation on internal/core without the
// facade.
func directJSON(t *testing.T) []byte {
	t.Helper()
	hs, err := data.ParseHierarchySpec(testHierarchies)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.ReadCSV(strings.NewReader(testCSV), "drought", []string{"severity"}, hs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ds, core.Options{EMIterations: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession([]string{"district", "year"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.ParseComplaint(testComplaint)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Recommend(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestOpenCSVMatchesCore(t *testing.T) {
	eng, err := reptile.Open(writeTestCSV(t),
		reptile.WithMeasures("severity"),
		reptile.WithHierarchies(testHierarchies),
		reptile.WithName("drought"),
		reptile.WithEMIterations(4),
		reptile.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := recommendJSON(t, eng), directJSON(t); !bytes.Equal(got, want) {
		t.Errorf("facade recommendation differs from internal/core:\nfacade: %s\ndirect: %s", got, want)
	}
}

func TestSaveAndReopenSnapshot(t *testing.T) {
	csvPath := writeTestCSV(t)
	eng, err := reptile.Open(csvPath,
		reptile.WithMeasures("severity"),
		reptile.WithHierarchies(testHierarchies),
		reptile.WithName("drought"),
		reptile.WithEMIterations(4),
		reptile.WithWorkers(1),
		reptile.WithCube())
	if err != nil {
		t.Fatal(err)
	}
	rstPath := filepath.Join(filepath.Dir(csvPath), "drought.rst")
	info, err := eng.Save(rstPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 8 || info.Dims != 3 || info.Measures != 1 {
		t.Errorf("snapshot info = %+v, want 8 rows, 3 dims, 1 measure", info)
	}
	if info.CubeLevels == 0 || info.CubeCells == 0 {
		t.Errorf("snapshot info = %+v, want a materialized cube", info)
	}

	reopened, err := reptile.Open(rstPath, reptile.WithEMIterations(4), reptile.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if name := reopened.Dataset().Name; name != "drought" {
		t.Errorf("reopened dataset name = %q", name)
	}
	if got, want := recommendJSON(t, reopened), directJSON(t); !bytes.Equal(got, want) {
		t.Errorf("snapshot recommendation differs from internal/core:\nsnapshot: %s\ndirect: %s", got, want)
	}
}

func TestOpenErrors(t *testing.T) {
	csvPath := writeTestCSV(t)
	cases := []struct {
		name string
		path string
		opts []reptile.Option
		want string
	}{
		{"missing measures", csvPath,
			[]reptile.Option{reptile.WithHierarchies(testHierarchies)}, "WithMeasures"},
		{"missing hierarchies", csvPath,
			[]reptile.Option{reptile.WithMeasures("severity")}, "WithHierarchies"},
		{"bad hierarchy spec", csvPath,
			[]reptile.Option{reptile.WithMeasures("severity"), reptile.WithHierarchies("nocolon")}, "bad hierarchy"},
		{"schema options on snapshot", filepath.Join(t.TempDir(), "x.rst"),
			[]reptile.Option{reptile.WithMeasures("severity")}, "carries its own"},
		{"name option on snapshot", filepath.Join(t.TempDir(), "x.rst"),
			[]reptile.Option{reptile.WithName("renamed")}, "carries its own"},
		{"nonexistent file", filepath.Join(t.TempDir(), "nope.csv"),
			[]reptile.Option{reptile.WithMeasures("m"), reptile.WithHierarchies("h:a")}, ""},
	}
	for _, tc := range cases {
		_, err := reptile.Open(tc.path, tc.opts...)
		if err == nil {
			t.Errorf("%s: Open succeeded, want error", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestNewRejectsSchemaOptions(t *testing.T) {
	ds := reptile.NewDataset("d", []string{"a"}, []string{"m"},
		[]reptile.Hierarchy{{Name: "h", Attrs: []string{"a"}}})
	ds.AppendRowVals([]string{"x"}, []float64{1})
	if _, err := reptile.New(ds, reptile.WithMeasures("m")); err == nil {
		t.Error("New with WithMeasures succeeded, want error")
	}
	if _, err := reptile.New(ds, reptile.WithName("renamed")); err == nil {
		t.Error("New with WithName succeeded, want error")
	}
	if _, err := reptile.New(ds); err != nil {
		t.Errorf("New: %v", err)
	}
}

// TestHierarchyOptionsCompose pins that the spec and structured hierarchy
// options append rather than overwrite, in either order.
func TestHierarchyOptionsCompose(t *testing.T) {
	geo := reptile.Hierarchy{Name: "geo", Attrs: []string{"district", "village"}}
	for _, opts := range [][]reptile.Option{
		{reptile.WithHierarchyList(geo), reptile.WithHierarchies("time:year")},
		{reptile.WithHierarchies("time:year"), reptile.WithHierarchyList(geo)},
	} {
		eng, err := reptile.Open(writeTestCSV(t),
			append([]reptile.Option{reptile.WithMeasures("severity"), reptile.WithEMIterations(4)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		if n := len(eng.Dataset().Hierarchies); n != 2 {
			t.Errorf("combined hierarchy options yield %d hierarchies, want 2", n)
		}
	}
}

func TestSessionDrillAndState(t *testing.T) {
	eng, err := reptile.Open(writeTestCSV(t),
		reptile.WithMeasures("severity"),
		reptile.WithHierarchies(testHierarchies),
		reptile.WithEMIterations(4))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession([]string{"district", "year"})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.StateKey(); got != "geo:1|time:1" {
		t.Errorf("state = %q", got)
	}
	if got := strings.Join(sess.GroupBy(), ","); got != "district,year" {
		t.Errorf("group-by = %q", got)
	}
	if err := sess.Drill("geo"); err != nil {
		t.Fatal(err)
	}
	if got := sess.StateKey(); got != "geo:2|time:1" {
		t.Errorf("state after drill = %q", got)
	}
	if err := sess.Drill("nope"); err == nil {
		t.Error("drilling an unknown hierarchy succeeded")
	}
}
