// Package sampledata ships the demo datasets the examples/ programs run on:
// deterministic generators for the paper's evaluation data — the FIST
// drought survey (§5.4), the COVID reporting case study (§5.3, Appendix L),
// the 2016/2020 election data (Appendices K and N), and the North Carolina
// absentee records (§5.1.4) — exposed through the public SDK's types so
// embedders can try the engine without bringing their own data.
//
// Every generator is seeded and reproducible: the same seed yields the same
// dataset, and therefore (the engine being deterministic) the same
// recommendations.
package sampledata

import (
	"repro/internal/datasets"
	"repro/reptile"
)

type (
	// FIST is the simulated Ethiopian drought survey of the §5.4 user
	// study: severity reports over Region → District → Village and Year
	// hierarchies, a satellite-rainfall auxiliary table per (village, year),
	// and the study's scripted complaint scenarios.
	FIST = datasets.FIST
	// FISTStep is one drill-down step of a study scenario.
	FISTStep = datasets.FISTStep
	// FISTComplaint is one user-study scenario: its steps and whether the
	// study expects Reptile to resolve it.
	FISTComplaint = datasets.FISTComplaint

	// Issue is one reproduced COVID GitHub data issue (Tables 1–2): the
	// broken location and day, the complaint direction, and whether the
	// paper expects Reptile to detect it.
	Issue = datasets.Issue
	// IssueClass is the error taxonomy of the COVID case study.
	IssueClass = datasets.IssueClass

	// Vote is the simulated 2016/2020 US county-level vote data: per-county
	// 2020 Trump share plus an auxiliary table with the 2016 share.
	Vote = datasets.Vote
)

// FISTSurvey generates the drought survey and its user-study script.
func FISTSurvey(seed int64) *FIST { return datasets.GenerateFIST(seed) }

// CovidUS generates the daily US state-level COVID reporting dataset
// (day and state hierarchies, confirmed/deaths measures).
func CovidUS(seed int64) *reptile.Dataset { return datasets.GenerateCovidUS(seed) }

// CovidGlobal generates the daily global country-level COVID dataset
// (day and region → country hierarchies).
func CovidGlobal(seed int64) *reptile.Dataset { return datasets.GenerateCovidGlobal(seed) }

// USIssues reproduces the Table 1 US data issues; apply one to a CovidUS
// dataset with Issue.Apply.
func USIssues() []Issue { return datasets.USIssues() }

// GlobalIssues reproduces the Table 2 global data issues.
func GlobalIssues() []Issue { return datasets.GlobalIssues() }

// VoteData generates the simulated election data of Appendices K and N.
func VoteData(seed int64) *Vote { return datasets.GenerateVote(seed) }

// Absentee simulates the North Carolina 2020 absentee dataset of §5.1.4:
// rows records over four single-attribute hierarchies (county, party, week,
// gender) with a constant "one" measure carrying COUNT complaints. rows <= 0
// selects the paper's 179K.
func Absentee(seed int64, rows int) *reptile.Dataset { return datasets.GenerateAbsentee(seed, rows) }

// AbsenteeDrillOrder is the §5.1.4 drill-down sequence over the absentee
// hierarchies.
var AbsenteeDrillOrder = datasets.AbsenteeDrillOrder
