package reptile_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/reptile"
)

// openSharded opens the test CSV at n shards through the facade.
func openSharded(t *testing.T, n int, extra ...reptile.Option) *reptile.Engine {
	t.Helper()
	opts := append([]reptile.Option{
		reptile.WithMeasures("severity"),
		reptile.WithHierarchies(testHierarchies),
		reptile.WithName("drought"),
		reptile.WithEMIterations(4),
		reptile.WithWorkers(1),
		reptile.WithShards(n),
	}, extra...)
	eng, err := reptile.Open(writeTestCSV(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestWithShardsMatchesUnsharded(t *testing.T) {
	want := directJSON(t)
	for _, n := range []int{2, 4} {
		eng := openSharded(t, n)
		if eng.Shards() != n || eng.ShardKey() != "district" {
			t.Fatalf("Shards()=%d ShardKey()=%q, want %d/district", eng.Shards(), eng.ShardKey(), n)
		}
		if got := recommendJSON(t, eng); !bytes.Equal(got, want) {
			t.Errorf("%d-shard recommendation differs from unsharded:\n%s\nvs\n%s", n, got, want)
		}
	}
	// WithCube composes: per-shard cubes, same bytes.
	if got := recommendJSON(t, openSharded(t, 2, reptile.WithCube())); !bytes.Equal(got, want) {
		t.Errorf("cubed sharded recommendation differs:\n%s\nvs\n%s", got, want)
	}
	// An explicit root key is accepted.
	if got := recommendJSON(t, openSharded(t, 2, reptile.WithShardKey("district"))); !bytes.Equal(got, want) {
		t.Errorf("keyed sharded recommendation differs:\n%s\nvs\n%s", got, want)
	}
}

func TestShardedSaveAndReopen(t *testing.T) {
	eng := openSharded(t, 2)
	path := filepath.Join(t.TempDir(), "drought.rst")
	info, err := eng.Save(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 2 || info.Rows != 8 {
		t.Fatalf("save info = %+v, want 2 shards, 8 rows", info)
	}
	re, err := reptile.Open(path, reptile.WithEMIterations(4), reptile.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if re.Shards() != 2 || re.ShardKey() != "district" {
		t.Fatalf("reopened Shards()=%d ShardKey()=%q, want 2/district", re.Shards(), re.ShardKey())
	}
	if got, want := recommendJSON(t, re), directJSON(t); !bytes.Equal(got, want) {
		t.Errorf("reopened partitioned snapshot diverges:\n%s\nvs\n%s", got, want)
	}
	// A partitioned file rejects a topology override.
	if _, err := reptile.Open(path, reptile.WithShards(4)); err == nil ||
		!strings.Contains(err.Error(), "shard topology") {
		t.Errorf("WithShards on a partitioned snapshot: %v", err)
	}
}

func TestShardOptionErrors(t *testing.T) {
	csv := writeTestCSV(t)
	base := []reptile.Option{reptile.WithMeasures("severity"), reptile.WithHierarchies(testHierarchies)}
	if _, err := reptile.Open(csv, append(base, reptile.WithShards(-1))...); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := reptile.Open(csv, append(base, reptile.WithShardKey("district"))...); err == nil {
		t.Error("WithShardKey without WithShards accepted")
	}
	if _, err := reptile.Open(csv, append(base, reptile.WithShards(2), reptile.WithShardKey("village"))...); err == nil {
		t.Error("non-root shard key accepted")
	}
}
