package reptile

import (
	"io"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/feature"
)

// The SDK's types are aliases of the engine's own: values cross the facade
// boundary without conversion, and a Recommendation obtained here marshals
// byte-identically to one produced inside internal/core (the property the
// wire protocol's round-trip tests pin down).

type (
	// Dataset is an in-memory columnar table: categorical dimension columns,
	// float64 measure columns, and hierarchy metadata. Build one with
	// NewDataset + AppendRowVals (generators) or ReadCSV/ReadCSVFile.
	Dataset = data.Dataset
	// Hierarchy is one dimension of the dataset: an ordered attribute list
	// from least to most specific (e.g. region, district, village), each
	// more specific attribute functionally determining the less specific.
	Hierarchy = data.Hierarchy
	// Predicate is a conjunction of attribute = value conditions; complaints
	// use one to identify the complained tuple.
	Predicate = data.Predicate

	// Complaint states that one tuple's aggregate deviates from expectation:
	// the aggregate, the measure it is computed over, the tuple's identifying
	// dimension values, and the deviation direction.
	Complaint = core.Complaint
	// Direction expresses how the complained value deviates (TooHigh,
	// TooLow, or ShouldBe with a Target).
	Direction = core.Direction
	// Recommendation is the output of one Reptile invocation: every
	// candidate hierarchy's evaluation and the best one.
	Recommendation = core.Recommendation
	// HierarchyResult is the evaluation of one candidate drill-down
	// hierarchy.
	HierarchyResult = core.HierarchyResult
	// GroupScore is one ranked drill-down group: its statistics, the model's
	// expected values, and the complaint score after repairing it.
	GroupScore = core.GroupScore
	// Trainer selects the model-training backend (see WithTrainer).
	Trainer = core.TrainerKind
	// RandomEffects selects the random-effects design Z (see
	// WithRandomEffects).
	RandomEffects = core.RandomEffects

	// Agg identifies a distributive aggregation function.
	Agg = agg.Func
	// Stats is a group's distributive statistics (count, sum, sum of
	// squares), from which every supported aggregate derives.
	Stats = agg.Stats
	// Group is one group of a group-by: its key values and statistics.
	Group = agg.Group

	// Aux is an auxiliary dataset joined on a single attribute; its measure
	// becomes a model feature (see WithAux).
	Aux = feature.Aux
	// GroupFeature is a multi-attribute per-group feature (see
	// WithGroupFeatures, LagFeature, AuxGroupFeature).
	GroupFeature = feature.GroupFeature
)

// The supported aggregation functions.
const (
	Count = agg.Count
	Sum   = agg.Sum
	Mean  = agg.Mean
	Std   = agg.Std
)

// The complaint directions.
const (
	// TooHigh means the aggregate should be lower.
	TooHigh = core.TooHigh
	// TooLow means the aggregate should be higher.
	TooLow = core.TooLow
	// ShouldBe means the aggregate should equal Complaint.Target.
	ShouldBe = core.ShouldBe
)

// The training backends.
const (
	// TrainerAuto picks TrainerFactorised when the observed groups nearly
	// fill the cross product of hierarchy paths, and TrainerNaive otherwise.
	TrainerAuto = core.TrainerAuto
	// TrainerNaive materializes the design matrix over observed groups.
	TrainerNaive = core.TrainerNaive
	// TrainerFactorised trains over the factorised representation.
	TrainerFactorised = core.TrainerFactorised
	// TrainerNaiveFull materializes the complete cross-product feature
	// matrix and trains densely over it (the paper's Matlab regime).
	TrainerNaiveFull = core.TrainerNaiveFull
)

// The random-effects designs.
const (
	// ZAuto uses intercept-only random effects when clusters are too small
	// to identify per-cluster coefficients, and the full design otherwise.
	ZAuto = core.ZAuto
	// ZFull uses Z = X (minus features excluded via WithExcludeFromZ).
	ZFull = core.ZFull
	// ZIntercept uses intercept-only random effects.
	ZIntercept = core.ZIntercept
)

// NewDataset creates an empty in-memory dataset with the given dimension and
// measure columns; fill it with AppendRowVals or AppendRow, then hand it to
// New.
func NewDataset(name string, dimNames, measureNames []string, hierarchies []Hierarchy) *Dataset {
	return data.New(name, dimNames, measureNames, hierarchies)
}

// ReadCSV loads a dataset from CSV content. Columns named in measures are
// parsed as float64 measure columns; all other columns become dimensions.
// hierarchies may be nil (e.g. for auxiliary tables).
func ReadCSV(r io.Reader, name string, measures []string, hierarchies []Hierarchy) (*Dataset, error) {
	return data.ReadCSV(r, name, measures, hierarchies)
}

// ReadCSVFile is ReadCSV over a file path.
func ReadCSVFile(path, name string, measures []string, hierarchies []Hierarchy) (*Dataset, error) {
	return data.ReadCSVFile(path, name, measures, hierarchies)
}

// ParseComplaint parses the compact complaint notation shared by the CLI and
// the server: space-separated key=value fields, e.g.
//
//	agg=mean measure=severity dir=low district="New York" year=1986
//
// Recognized keys are agg (count, sum, mean, std), measure, dir (high, low,
// or should) and target (required with dir=should); every other key becomes
// a tuple condition. Values containing spaces are double-quoted.
func ParseComplaint(spec string) (Complaint, error) { return core.ParseComplaint(spec) }

// ParseHierarchies parses the compact hierarchy notation:
// semicolon-separated hierarchies, each "name:attr1,attr2,..." from least to
// most specific, e.g. "geo:region,district,village;time:year".
func ParseHierarchies(spec string) ([]Hierarchy, error) { return data.ParseHierarchySpec(spec) }

// LagFeature builds a per-group feature holding the group's target statistic
// at time − lag along timeAttr (trend and seasonality features for temporal
// data).
func LagFeature(timeAttr string, lag int) GroupFeature { return feature.LagFeature(timeAttr, lag) }

// AuxGroupFeature builds a per-group feature from an auxiliary table joined
// on multiple attributes: each group's feature value is the mean of measure
// over the aux rows matching the group's joinAttrs values.
func AuxGroupFeature(name string, table *Dataset, joinAttrs []string, measure string) GroupFeature {
	return feature.AuxGroupFeature(name, table, joinAttrs, measure)
}
