#!/usr/bin/env sh
# Runs the storage-layer benchmarks (CSV vs .rst snapshot load, eager vs
# memory-mapped open, string-keyed vs dictionary-coded vs sharded
# scatter-gather Recommend, cube vs coded-scan vs streamed GroupBy,
# incremental cube maintenance, and per-row vs micro-batched append
# ingestion) and writes the results to BENCH_load.json in
# the repository root. Every run records allocation columns (-benchmem):
# bytes_per_op and allocs_per_op are the figures of merit for the mapped
# open, whose residency must stay flat in the row count. Override the
# iteration count with BENCHTIME (a Go -benchtime value, e.g. "3x" or "2s").
set -eu
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-5x}"
out=BENCH_load.json
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# No pipelines around go test: plain sh has no pipefail, and a pipe into tee
# would mask a benchmark failure behind tee's exit status.
go test -run '^$' -bench 'BenchmarkLoad(CSV|Snapshot)$|BenchmarkOpenMapped$|BenchmarkGroupByStreamed$' -benchtime "$benchtime" -benchmem -count 1 ./internal/store > "$tmp"
go test -run '^$' -bench 'BenchmarkRecommend(Sequential|Coded)$|BenchmarkRecommendSharded$' -benchtime "$benchtime" -benchmem -count 1 . >> "$tmp"
go test -run '^$' -bench 'BenchmarkGroupBy(Coded|Cube)$|BenchmarkCubeAppendMerge$' -benchtime "$benchtime" -benchmem -count 1 ./internal/cube >> "$tmp"
go test -run '^$' -bench 'BenchmarkAppendMicroBatch$' -benchtime "$benchtime" -benchmem -count 1 ./internal/server >> "$tmp"
cat "$tmp"

awk '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    bytes = 0; allocs = 0; rps = 0; rbk = 0
    for (i = 2; i <= NF; i++) {
        if ($i == "B/op") bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
        if ($i == "rows/s") rps = $(i - 1)
        if ($i == "rebuilds/krow") rbk = $(i - 1)
    }
    extra = ""
    if (rps) extra = extra sprintf(", \"rows_per_sec\": %s", rps)
    if (rbk) extra = extra sprintf(", \"rebuilds_per_krow\": %s", rbk)
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}", name, $2, $3, bytes, allocs, extra
}
END { if (n == 0) exit 1 }
' "$tmp" > "$out.body"

{
    printf '{\n  "benchmarks": [\n'
    cat "$out.body"
    printf '\n  ]\n}\n'
} > "$out"
rm -f "$out.body"
echo "wrote $out"
