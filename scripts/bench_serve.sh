#!/usr/bin/env sh
# End-to-end serving benchmark: generates an examples dataset (gendata fist),
# starts a reptiled on a loopback port, registers the dataset, drives it with
# reptile-bench (closed loop over the native client, complaint mixes sampled
# from the dataset's own rows, warmup excluded), and records the report —
# client-side p50/p95/p99 latency, achieved QPS, and the server's /v1/stats
# snapshot with per-endpoint histograms and per-stage timings — to
# BENCH_serve.json in the repository root.
#
# Tunables (environment):
#   BENCH_DURATION   measured run length            (default 10s)
#   BENCH_WARMUP     span excluded from statistics  (default 2s)
#   BENCH_CONC       closed-loop user count         (default 4)
#   BENCH_ADDR       listen address                 (default 127.0.0.1:8377)
#   BENCH_OUT        report path                    (default BENCH_serve.json)
set -eu
cd "$(dirname "$0")/.."

duration="${BENCH_DURATION:-10s}"
warmup="${BENCH_WARMUP:-2s}"
conc="${BENCH_CONC:-4}"
addr="${BENCH_ADDR:-127.0.0.1:8377}"
out="${BENCH_OUT:-BENCH_serve.json}"

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    [ -n "$daemon_pid" ] && wait "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/reptiled" ./cmd/reptiled
go build -o "$tmp/reptile-bench" ./cmd/reptile-bench
go build -o "$tmp/gendata" ./cmd/gendata

# fist is the fixed-size FIST survey dataset (6912 rows, measure "severity",
# hierarchies geo:region,district,village and time:year).
"$tmp/gendata" -dataset fist -out "$tmp/fist.csv"

"$tmp/reptiled" -addr "$addr" &
daemon_pid=$!

# Wait for the daemon to accept requests (registration doubles as readiness
# probing: retry until the listener is up).
i=0
until curl -sf -o /dev/null "http://$addr/healthz"; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && { echo "reptiled did not come up on $addr" >&2; exit 1; }
    sleep 0.1
done

curl -sf -X POST "http://$addr/v1/datasets" \
    -H 'Content-Type: application/json' \
    -d "{\"name\":\"fist\",\"path\":\"$tmp/fist.csv\",\"measures\":[\"severity\"],\"hierarchies\":\"geo:region,district,village;time:year\"}" \
    > /dev/null

"$tmp/reptile-bench" \
    -addr "http://$addr" -dataset fist \
    -csv "$tmp/fist.csv" -measure severity -group-by region,year \
    -mode closed -concurrency "$conc" \
    -duration "$duration" -warmup "$warmup" \
    -out "$out"

echo "wrote $out"
