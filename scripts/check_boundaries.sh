#!/bin/sh
# check_boundaries.sh enforces the public-API import boundary:
#
#   - examples/ may only use the public SDK (repro/reptile...): importing
#     repro/internal/... anywhere under examples/ is an error.
#   - reptile/api and reptile/client are pure protocol packages: they must
#     not import repro/internal/... (api is stdlib-only; client is stdlib +
#     reptile/api), so out-of-tree clients could vendor them verbatim.
#   - internal/ must never import the repro/reptile facade or reptile/client:
#     the dependency arrow points one way (facade wraps engine), and a
#     back-edge would make the shard/server layers impossible to evolve under
#     the facade. reptile/api is exempt — it is the shared wire protocol and
#     internal/server marshals it by design.
#
# The root reptile package (and reptile/sampledata) are the sanctioned
# bridges over internal/ — that is their whole point — so they are not
# checked. Test files (_test.go) are exempt everywhere: the client's
# round-trip tests deliberately host the internal server in-process.
#
# Run from the repository root: sh scripts/check_boundaries.sh
set -eu

fail=0

check_tree() {
    tree="$1"
    bad="$(grep -rn '"repro/internal' --include='*.go' "$tree" 2>/dev/null | grep -v '_test\.go:' || true)"
    if [ -n "$bad" ]; then
        echo "boundary violation: $tree must not import repro/internal/..." >&2
        echo "$bad" >&2
        fail=1
    fi
}

check_tree examples
check_tree reptile/api
check_tree reptile/client

# Belt and braces: the client package must not even import the facade (it
# has to compile into processes that never link the engine).
bad="$(grep -rn '"repro/reptile"' --include='*.go' reptile/client 2>/dev/null | grep -v '_test\.go:' || true)"
if [ -n "$bad" ]; then
    echo "boundary violation: reptile/client must depend only on stdlib and reptile/api" >&2
    echo "$bad" >&2
    fail=1
fi

# The inverse arrow: nothing under internal/ may import the facade or the
# HTTP client. (reptile/api is fine — it is the shared wire protocol, and
# internal/server marshals it by design.)
bad="$(grep -rn -e '"repro/reptile"' -e '"repro/reptile/client"' --include='*.go' internal 2>/dev/null | grep -v '_test\.go:' || true)"
if [ -n "$bad" ]; then
    echo "boundary violation: internal/ must not import repro/reptile or repro/reptile/client" >&2
    echo "$bad" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "API boundaries clean: examples/ and reptile/{api,client} import no repro/internal packages; internal/ imports neither the facade nor the client"
