#!/bin/sh
# check_boundaries.sh enforces the public-API import boundary. The rules
# themselves now live as typed, AST-level import-graph checks in
# internal/lint (the boundaries analyzer) — this wrapper survives so every
# existing entrypoint (`make lint`, CI, muscle memory) keeps working. See
# `go run ./cmd/reptile-lint -list` for the full analyzer suite and
# internal/lint/boundaries.go for the rule table:
#
#   - examples/ may only use the public SDK: no repro/internal imports.
#   - reptile/api is stdlib-only; reptile/client is stdlib + reptile/api.
#   - internal/ must not import the facade, the client, or sampledata.
#   - internal/core must not import internal/obs.
#
# Test files (_test.go) are exempt everywhere: the client's round-trip tests
# deliberately host the internal server in-process.
#
# Run from the repository root: sh scripts/check_boundaries.sh
set -eu

go run ./cmd/reptile-lint -only boundaries
echo "API boundaries clean (reptile-lint boundaries)"
